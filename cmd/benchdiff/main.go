// Command benchdiff compares two bench2json reports and fails when a key
// benchmark regressed. It is the gate behind `make bench-gate` and the CI
// bench-gate job: the newest committed BENCH_<date>.json is the baseline,
// a fresh run of the key benchmarks is the candidate, and any ns/op
// increase beyond -threshold exits non-zero.
//
// Usage:
//
//	go test -run NONE -bench 'Broadcast|ExactKernels' ./... \
//	    | bench2json -out /tmp/new.json
//	benchdiff -new /tmp/new.json
//
// By default the baseline is the lexicographically newest BENCH_*.json in
// -dir (the date-stamped names sort chronologically). Benchmarks are
// matched after stripping Go's trailing -<GOMAXPROCS> suffix, so reports
// from machines with different core counts still compare. Only the
// benchmarks named by -keys gate the exit status; everything present in
// both reports is shown in the delta table for context.
//
// Exit codes: 0 ok, 1 regression beyond threshold, 2 usage error or no key
// benchmark present in both reports (a silently empty gate is a failure).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Benchmark and Report mirror cmd/bench2json's JSON document.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const defaultKeys = "BenchmarkBroadcastK32,BenchmarkBroadcastPushK32,BenchmarkExactKernels,BenchmarkEstimateColdVsCached,BenchmarkArbFourCycle"

// stripProcs removes Go's -<GOMAXPROCS> suffix (BenchmarkFoo-8 → BenchmarkFoo)
// so reports taken on machines with different core counts line up.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// index maps stripped benchmark name → ns/op. Sub-benchmarks keep their
// /sub path; duplicates (same name from multiple packages) keep the first.
func index(rep *Report) map[string]float64 {
	m := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		name := stripProcs(b.Name)
		if _, dup := m[name]; !dup {
			m[name] = ns
		}
	}
	return m
}

// matchesKey reports whether a stripped benchmark name belongs to key:
// either the exact benchmark or one of its sub-benchmarks (key/...).
func matchesKey(name, key string) bool {
	return name == key || strings.HasPrefix(name, key+"/")
}

func isKeyed(name string, keys []string) bool {
	for _, k := range keys {
		if matchesKey(name, k) {
			return true
		}
	}
	return false
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// newestBaseline returns the lexicographically last BENCH_*.json in dir;
// the BENCH_YYYY-MM-DD naming makes that the chronologically newest.
func newestBaseline(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline in %s", dir)
	}
	sort.Strings(paths)
	return paths[len(paths)-1], nil
}

type row struct {
	name     string
	base, nw float64
	keyed    bool
}

func (r row) delta() float64 { return r.nw/r.base - 1 }

// geomeanDelta returns the geometric mean of the rows' new/baseline ratios,
// minus one — the balanced "overall moved by" figure (each benchmark weighs
// the same regardless of its absolute ns/op).
func geomeanDelta(rows []row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sumLog float64
	for _, r := range rows {
		sumLog += math.Log(r.nw / r.base)
	}
	return math.Exp(sumLog/float64(len(rows))) - 1
}

// diff joins the two indexes on benchmark name, sorted worst-delta first.
func diff(base, nw map[string]float64, keys []string) []row {
	rows := make([]row, 0, len(nw))
	for name, n := range nw {
		b, ok := base[name]
		if !ok || b <= 0 {
			continue
		}
		rows = append(rows, row{name: name, base: b, nw: n, keyed: isKeyed(name, keys)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].delta() != rows[j].delta() {
			return rows[i].delta() > rows[j].delta()
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory searched for the newest BENCH_*.json baseline")
	basePath := fs.String("baseline", "", "explicit baseline report (overrides -dir)")
	newPath := fs.String("new", "", "candidate report to gate (required)")
	threshold := fs.Float64("threshold", 0.15, "max tolerated ns/op regression on key benchmarks (0.15 = +15%)")
	keysFlag := fs.String("keys", defaultKeys, "comma-separated benchmarks that gate the exit status")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -new is required")
		fs.Usage()
		return 2
	}
	keys := strings.Split(*keysFlag, ",")
	for i := range keys {
		keys[i] = strings.TrimSpace(keys[i])
	}

	if *basePath == "" {
		p, err := newestBaseline(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		*basePath = p
	}
	baseRep, err := loadReport(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	newRep, err := loadReport(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: candidate: %v\n", err)
		return 2
	}

	rows := diff(index(baseRep), index(newRep), keys)
	fmt.Fprintf(stdout, "baseline: %s (%s)\n", *basePath, baseRep.Date)
	fmt.Fprintf(stdout, "new:      %s (%s)\n\n", *newPath, newRep.Date)
	fmt.Fprintln(stdout, "| benchmark | baseline ns/op | new ns/op | delta | gate |")
	fmt.Fprintln(stdout, "|---|---:|---:|---:|---|")
	keyedSeen := 0
	regressed := []row{}
	for _, r := range rows {
		gate := ""
		if r.keyed {
			keyedSeen++
			gate = "key"
			if r.delta() > *threshold {
				gate = "**FAIL**"
				regressed = append(regressed, r)
			}
		}
		fmt.Fprintf(stdout, "| %s | %.1f | %.1f | %+.1f%% | %s |\n",
			r.name, r.base, r.nw, 100*r.delta(), gate)
	}
	if len(rows) > 0 {
		fmt.Fprintf(stdout, "| _geomean_ | | | %+.1f%% | |\n", 100*geomeanDelta(rows))
	}
	fmt.Fprintln(stdout)

	if keyedSeen == 0 {
		fmt.Fprintf(stderr, "benchdiff: none of the key benchmarks (%s) appear in both reports\n", *keysFlag)
		return 2
	}
	if len(regressed) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d key benchmark(s) regressed beyond %+.0f%%:\n", len(regressed), 100**threshold)
		for _, r := range regressed {
			fmt.Fprintf(stderr, "  %s: %.1f → %.1f ns/op (%+.1f%%)\n", r.name, r.base, r.nw, 100*r.delta())
		}
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d key benchmark(s) within %+.0f%% of baseline\n", keyedSeen, 100**threshold)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
