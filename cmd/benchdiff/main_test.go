package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, path string, date string, benches map[string]float64) {
	t.Helper()
	rep := Report{Date: date}
	for name, ns := range benches {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name:       name,
			Iterations: 100,
			Metrics:    map[string]float64{"ns/op": ns},
		})
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo-16":         "BenchmarkFoo",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/sub=3-8":    "BenchmarkFoo/sub=3",
		"BenchmarkFoo/k-means":    "BenchmarkFoo/k-means",
		"BenchmarkBroadcastK32-4": "BenchmarkBroadcastK32",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunOKWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, filepath.Join(dir, "BENCH_2026-01-01.json"), "old", map[string]float64{
		"BenchmarkBroadcastK32-8":              1000,
		"BenchmarkExactKernels/oracle-8":       500,
		"BenchmarkEstimateColdVsCached/cold-8": 200,
		"BenchmarkUnrelated-8":                 50,
	})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{
		"BenchmarkBroadcastK32-8":              1100, // +10%, under 15%
		"BenchmarkExactKernels/oracle-8":       490,
		"BenchmarkEstimateColdVsCached/cold-8": 205,
		"BenchmarkUnrelated-8":                 500, // +900% but not a key
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", dir, "-new", newPath}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "ok: 3 key benchmark(s)") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "| BenchmarkUnrelated |") {
		t.Fatalf("non-key benchmark missing from table:\n%s", out.String())
	}
}

func TestRunRegressionFails(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, filepath.Join(dir, "BENCH_2026-01-01.json"), "old", map[string]float64{
		"BenchmarkBroadcastK32-8": 1000,
	})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{
		"BenchmarkBroadcastK32-8": 1300, // +30%
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", dir, "-new", newPath}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1; stderr %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "BenchmarkBroadcastK32") {
		t.Fatalf("stderr:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "**FAIL**") {
		t.Fatalf("table should flag the regression:\n%s", out.String())
	}
}

func TestRunCustomThreshold(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, filepath.Join(dir, "BENCH_2026-01-01.json"), "old", map[string]float64{
		"BenchmarkBroadcastK32-8": 1000,
	})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{
		"BenchmarkBroadcastK32-8": 1400, // +40%, under a 50% threshold
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", dir, "-new", newPath, "-threshold", "0.5"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
}

func TestRunNewestBaselineWins(t *testing.T) {
	dir := t.TempDir()
	// Older baseline would fail the gate; newer one passes. The newest
	// (lexicographically last) file must be chosen.
	writeReport(t, filepath.Join(dir, "BENCH_2026-01-01.json"), "old", map[string]float64{
		"BenchmarkBroadcastK32-8": 100,
	})
	writeReport(t, filepath.Join(dir, "BENCH_2026-02-01.json"), "newer", map[string]float64{
		"BenchmarkBroadcastK32-8": 1000,
	})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{
		"BenchmarkBroadcastK32-8": 1050,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", dir, "-new", newPath}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "BENCH_2026-02-01.json") {
		t.Fatalf("wrong baseline chosen:\n%s", out.String())
	}
}

func TestRunMissingKeysExit2(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, filepath.Join(dir, "BENCH_2026-01-01.json"), "old", map[string]float64{
		"BenchmarkSomethingElse-8": 100,
	})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{
		"BenchmarkSomethingElse-8": 100,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", dir, "-new", newPath}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "none of the key benchmarks") {
		t.Fatalf("stderr:\n%s", errw.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{},                                  // -new missing
		{"-new", "/nope.json", "-dir", dir}, // no baseline in dir
		{"-new", "/nope.json", "-baseline", "/also-nope.json"}, // unreadable
	}
	for i, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("case %d: exit %d, want 2", i, code)
		}
	}
}

func TestRunExplicitBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "custom.json")
	writeReport(t, base, "old", map[string]float64{"BenchmarkExactKernels/csr-8": 100})
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, newPath, "new", map[string]float64{"BenchmarkExactKernels/csr-8": 101})
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", base, "-new", newPath}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
}
