// Command adjserved serves cycle-count estimates over HTTP: graphs are
// loaded once into a catalog, and each request runs a library estimator
// under a per-request deadline through a bounded worker pool.
//
// Usage:
//
//	adjserved -graphs ./data -listen localhost:8356
//	adjserved -demo -workers 4 -queue 8
//
// API:
//
//	POST /v1/estimate              {"graph":"...","algorithm":"exact", ...}
//	POST /v1/distinguish           {"graph":"...","cycle_len":3, ...}
//	POST /v1/estimate/batch        {"requests":[{...},{...}]}
//	GET  /v1/graphs                catalog listing
//	GET  /v1/graphs/{name}         dataset detail (fingerprint, version, degrees)
//	POST /v1/graphs/{name}/edges   live edge ingestion (batched, idempotent)
//	GET  /healthz                  readiness (503 while draining)
//
// Graphs mutate through edge batches: ops stage into a delta and merge
// into a new immutable graph version either every -merge-threshold ops or
// on a batch's "flush" flag; every estimate pins one version end-to-end
// and echoes it as graph_version/graph_fingerprint.
//
// Results are deterministic in (graph, algorithm, options, seed), so the
// server caches them: repeat requests are answered from a sharded LRU
// (see -cache-entries, -cache-ttl, -no-cache; the X-Cache response header
// reports hit/miss/coalesced/bypass) and concurrent identical requests
// are coalesced into a single estimation run.
//
// On SIGINT/SIGTERM the server drains: /healthz flips to 503 so load
// balancers stop routing, new estimation work is rejected, in-flight
// requests run to completion (bounded by -drain-timeout), and — with
// -telemetry — the final metrics snapshot is written to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"adjstream/internal/serve"
	"adjstream/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeSnapshot dumps the telemetry registry to w, sorted by metric name.
func writeSnapshot(w io.Writer, reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s\t%g\n", name, snap[name])
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adjserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "localhost:8356", "service listen address")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and tests)")
	graphsDir := fs.String("graphs", "", "directory of *.edges / *.txt edge-list files to serve")
	demo := fs.Bool("demo", false, "load built-in demo graphs (k16, triangles64, fourcycles64, er400)")
	workers := fs.Int("workers", 0, "max concurrent estimations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", -1, "admitted requests waiting for a worker beyond the slots (-1 = 2x workers, 0 = reject immediately)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on per-request deadlines")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	cacheEntries := fs.Int("cache-entries", 4096, "max cached results across all shards")
	cacheTTL := fs.Duration("cache-ttl", 0, "expire cached results after this age (0 = only LRU eviction)")
	noCache := fs.Bool("no-cache", false, "disable the result cache and request coalescing")
	mergeThreshold := fs.Int("merge-threshold", serve.DefaultMergeThreshold, "pending ingested edge ops that force a merge into a new graph version")
	maxVersions := fs.Int("max-versions", serve.DefaultMaxVersions, "published graph versions retained for version-pinned shard requests")
	teleAddr := fs.String("telemetry", "", "also serve /debug/vars and /debug/pprof on this address, and dump a metrics snapshot on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "adjserved: unexpected arguments:", fs.Args())
		return 2
	}
	if *graphsDir == "" && !*demo {
		fmt.Fprintln(stderr, "adjserved: no graphs to serve (use -graphs DIR and/or -demo)")
		return 2
	}

	cat := serve.NewCatalog()
	cat.SetMergePolicy(*mergeThreshold, *maxVersions)
	if *demo {
		if err := serve.LoadDemo(cat); err != nil {
			fmt.Fprintln(stderr, "adjserved:", err)
			return 1
		}
	}
	if *graphsDir != "" {
		n, err := cat.LoadDir(*graphsDir)
		if err != nil {
			fmt.Fprintln(stderr, "adjserved:", err)
			return 1
		}
		if n == 0 && !*demo {
			fmt.Fprintf(stderr, "adjserved: no edge-list files in %s\n", *graphsDir)
			return 1
		}
	}

	var reg *telemetry.Registry
	if *teleAddr != "" {
		ln, err := telemetry.Listen(*teleAddr)
		if err != nil {
			fmt.Fprintln(stderr, "adjserved:", err)
			return 1
		}
		defer ln.Close()
		reg = telemetry.Global()
		fmt.Fprintf(stdout, "telemetry on http://%s/debug/vars\n", ln.Addr())
	}

	entries := *cacheEntries
	if *noCache || entries == 0 {
		entries = -1
	}
	srv := serve.New(cat, serve.Config{
		Workers:      *workers,
		Queue:        *queue,
		MaxTimeout:   *maxTimeout,
		CacheEntries: entries,
		CacheTTL:     *cacheTTL,
	})
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "adjserved:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "adjserved:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "serving %d graphs on http://%s (workers %d, queue %d)\n",
		cat.Len(), ln.Addr(), srv.Pool().Workers(), srv.Pool().Queue())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "adjserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: fail readiness and reject new estimation work first, then
	// wait for in-flight requests before closing connections.
	fmt.Fprintln(stdout, "draining...")
	srv.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.DrainWait(drainCtx); err != nil {
		fmt.Fprintln(stderr, "adjserved: drain timeout, aborting in-flight requests")
		hs.Close()
	} else if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "adjserved:", err)
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed

	if reg != nil {
		fmt.Fprintln(stderr, "final telemetry snapshot:")
		writeSnapshot(stderr, reg)
	}
	fmt.Fprintln(stdout, "bye")
	return 0
}
