package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startServer runs the binary's run() in a goroutine on an ephemeral port
// and returns the bound base URL plus a channel carrying the exit code.
func startServer(t *testing.T, extraArgs ...string) (baseURL string, done chan int, stdout, stderr *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-listen", "localhost:0",
		"-addr-file", addrFile,
		"-demo",
		"-drain-timeout", "5s",
	}, extraArgs...)
	stdout, stderr = &bytes.Buffer{}, &bytes.Buffer{}
	done = make(chan int, 1)
	go func() { done <- run(args, stdout, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			return "http://" + string(b), done, stdout, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote addr file; stderr: %s", stderr)
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with code %d; stderr: %s", code, stderr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestServeEndToEnd boots the real binary, exercises the API over TCP, and
// shuts it down with the signal path the deployment would use.
func TestServeEndToEnd(t *testing.T) {
	base, done, stdout, stderr := startServer(t, "-workers", "2")

	// Readiness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// Catalog: the demo graphs are present.
	resp, err = http.Get(base + "/v1/graphs")
	if err != nil {
		t.Fatalf("GET /v1/graphs: %v", err)
	}
	var graphs struct {
		Graphs []struct {
			Name string `json:"name"`
			M    int64  `json:"m"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&graphs); err != nil {
		t.Fatalf("decode graphs: %v", err)
	}
	resp.Body.Close()
	if len(graphs.Graphs) != 4 {
		t.Fatalf("got %d demo graphs, want 4: %+v", len(graphs.Graphs), graphs)
	}

	// An exact count over the demo catalog: 64 disjoint triangles.
	resp, err = http.Post(base+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"triangles64","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("POST /v1/estimate: %v", err)
	}
	var est struct {
		Estimate float64 `json:"estimate"`
		Passes   int     `json:"passes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatalf("decode estimate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || est.Estimate != 64 {
		t.Fatalf("estimate = %d %+v, want 200 with 64 triangles", resp.StatusCode, est)
	}

	// Distinguish on a triangle-free graph.
	resp, err = http.Post(base+"/v1/distinguish", "application/json",
		strings.NewReader(`{"graph":"fourcycles64","cycle_len":3,"sample_size":256,"seed":5}`))
	if err != nil {
		t.Fatalf("POST /v1/distinguish: %v", err)
	}
	var dis struct {
		Found *bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dis); err != nil {
		t.Fatalf("decode distinguish: %v", err)
	}
	resp.Body.Close()
	if dis.Found == nil || *dis.Found {
		t.Fatalf("distinguish triangles in fourcycles64 = %v, want found=false", dis.Found)
	}

	// Graceful shutdown on SIGTERM: run() must return 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not shut down after SIGTERM; stdout: %s", stdout)
	}
	if !strings.Contains(stdout.String(), "draining...") {
		t.Errorf("shutdown did not announce drain; stdout: %s", stdout)
	}
}

// TestServeGraphsDir serves a real edge-list directory.
func TestServeGraphsDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tri.edges"), []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "localhost:0", "-addr-file", addrFile,
			"-graphs", dir, "-drain-timeout", "2s",
		}, &stdout, &stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no addr file; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(base+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"tri","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var est struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if est.Estimate != 1 {
		t.Fatalf("estimate = %v, want 1", est.Estimate)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no shutdown after SIGTERM")
	}
}

// lockedBuffer is a Writer safe to read while the server goroutine is
// still writing to it (startServer's bare bytes.Buffer is only read after
// shutdown).
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestCacheSmoke is the `make cache-smoke` entry point: boot adjserved
// with the demo catalog and telemetry enabled, issue the same request
// twice, and assert the repeat was answered from the result cache — via
// the X-Cache header, the live /debug/vars counters, and the final
// telemetry snapshot dumped on shutdown.
// TestModelSmoke is the `make model-smoke` service half: an arbitrary-order
// estimate over the real binary round-trips with the model echoed, hits the
// cache on repeat, and stays distinct from the adjacency-list entry space.
func TestModelSmoke(t *testing.T) {
	base, done, _, stderr := startServer(t, "-workers", "2")

	const body = `{"graph":"fourcycles64","model":"arbitrary","algorithm":"arb-threepass-fourcycle","sample_prob":1,"seed":3}`
	var bodies [2][]byte
	var outcomes [2]string
	for n := 0; n < 2; n++ {
		resp, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %d: %v", n, err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: status %d err %v body %s", n, resp.StatusCode, err, b)
		}
		bodies[n], outcomes[n] = b, resp.Header.Get("X-Cache")
	}
	if outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Fatalf("X-Cache = %v, want [miss hit]", outcomes)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	var est struct {
		Estimate float64 `json:"estimate"`
		Model    string  `json:"model"`
		Passes   int     `json:"passes"`
		Driver   string  `json:"driver"`
	}
	if err := json.Unmarshal(bodies[0], &est); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if est.Estimate != 64 || est.Model != "arbitrary" || est.Passes != 3 || est.Driver != "" {
		t.Fatalf("arbitrary estimate = %+v, want 64 four-cycles over 3 passes, model echoed, no driver", est)
	}

	// An adjacency-list run of the same graph lands in its own cache entry:
	// first request is a miss, not a cross-model hit.
	resp, err := http.Post(base+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"fourcycles64","algorithm":"exact","cycle_len":4,"seed":3}`))
	if err != nil {
		t.Fatalf("POST AL: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("AL run: status %d X-Cache %q, want 200 miss", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no shutdown after SIGTERM")
	}
}

func TestCacheSmoke(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "localhost:0", "-addr-file", addrFile,
			"-demo", "-workers", "2", "-drain-timeout", "5s",
			"-telemetry", "localhost:0",
		}, stdout, stderr)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no addr file; stderr: %s", stderr)
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with code %d; stderr: %s", code, stderr)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The telemetry line is printed before the addr file is written, so it
	// is present by now.
	out := stdout.String()
	i := strings.Index(out, "telemetry on http://")
	if i < 0 {
		t.Fatalf("no telemetry address in stdout: %s", out)
	}
	teleURL := strings.TrimSpace(out[i+len("telemetry on ") : strings.IndexByte(out[i:], '\n')+i])

	// Same request twice: the repeat must be a cache hit with an identical
	// body.
	const body = `{"graph":"triangles64","algorithm":"exact","seed":1}`
	var bodies [2][]byte
	var outcomes [2]string
	for n := 0; n < 2; n++ {
		resp, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %d: %v", n, err)
		}
		bodies[n], err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: status %d err %v", n, resp.StatusCode, err)
		}
		outcomes[n] = resp.Header.Get("X-Cache")
	}
	if outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Fatalf("X-Cache = %v, want [miss hit]", outcomes)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", bodies[0], bodies[1])
	}

	// The live metrics endpoint reflects the hit.
	resp, err := http.Get(teleURL)
	if err != nil {
		t.Fatalf("GET %s: %v", teleURL, err)
	}
	var vars struct {
		Adjstream map[string]float64 `json:"adjstream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	resp.Body.Close()
	if vars.Adjstream["serve.cache.hits"] < 1 {
		t.Errorf("serve.cache.hits = %v, want >= 1 (snapshot: %v)",
			vars.Adjstream["serve.cache.hits"], vars.Adjstream)
	}
	if vars.Adjstream["serve.cache.misses"] < 1 {
		t.Errorf("serve.cache.misses = %v, want >= 1", vars.Adjstream["serve.cache.misses"])
	}

	// Graceful shutdown dumps the final snapshot, cache counters included.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no shutdown after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "serve.cache.hits") {
		t.Errorf("final snapshot missing cache counters; stderr: %s", stderr)
	}
}

// TestIngestSmoke is the `make ingest-smoke` entry point: boot adjserved
// with a small merge threshold, stream edge batches into a demo graph,
// and assert staging, idempotent replay, the threshold merge, the flush
// merge, version-pinned estimates, and the ingest telemetry counters —
// end-to-end over TCP, through shutdown.
func TestIngestSmoke(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "localhost:0", "-addr-file", addrFile,
			"-demo", "-workers", "2", "-drain-timeout", "5s",
			"-merge-threshold", "4", "-max-versions", "8",
			"-telemetry", "localhost:0",
		}, stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no addr file; stderr: %s", stderr)
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with code %d; stderr: %s", code, stderr)
		case <-time.After(5 * time.Millisecond):
		}
	}

	ingest := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+"/v1/graphs/triangles64/edges", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST edges: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		return m
	}
	estimate := func() (count, version float64) {
		t.Helper()
		resp, err := http.Post(base+"/v1/estimate", "application/json",
			strings.NewReader(`{"graph":"triangles64","algorithm":"exact","seed":1}`))
		if err != nil {
			t.Fatalf("POST estimate: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		c, _ := m["estimate"].(float64)
		v, _ := m["graph_version"].(float64)
		return c, v
	}

	// Baseline: 64 triangles at version 1.
	if c, v := estimate(); c != 64 || v != 1 {
		t.Fatalf("baseline estimate = %v at version %v, want 64 at 1", c, v)
	}

	// Two staged ops: below the threshold, nothing published.
	m := ingest(`{"batch_id":"s1","add":[[500,501],[501,502]]}`)
	if m["merged"] == true || m["pending_ops"] != float64(2) || m["graph_version"] != float64(1) {
		t.Fatalf("stage = %v, want 2 pending at version 1", m)
	}
	// Replaying the same batch id changes nothing.
	if m = ingest(`{"batch_id":"s1","add":[[500,501],[501,502]]}`); m["duplicate"] != true {
		t.Fatalf("replay = %v, want duplicate=true", m)
	}
	if c, v := estimate(); c != 64 || v != 1 {
		t.Fatalf("estimate after staging = %v at version %v, want 64 at 1 (staged ops leaked)", c, v)
	}

	// Two more ops hit -merge-threshold 4: version 2 publishes with a new
	// triangle closing the 500-501-502 path.
	m = ingest(`{"batch_id":"s2","add":[[502,500],[502,503]]}`)
	if m["merged"] != true || m["graph_version"] != float64(2) {
		t.Fatalf("threshold merge = %v, want merged at version 2", m)
	}
	if c, v := estimate(); c != 65 || v != 2 {
		t.Fatalf("post-merge estimate = %v at version %v, want 65 at 2", c, v)
	}

	// A flush batch publishes immediately: removing the extra chord.
	m = ingest(`{"batch_id":"s3","remove":[[502,503]],"flush":true}`)
	if m["merged"] != true || m["graph_version"] != float64(3) {
		t.Fatalf("flush merge = %v, want merged at version 3", m)
	}
	if c, v := estimate(); c != 65 || v != 3 {
		t.Fatalf("post-flush estimate = %v at version %v, want 65 at 3", c, v)
	}

	// The detail resource tracks the history.
	resp, err := http.Get(base + "/v1/graphs/triangles64")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Version  uint64   `json:"version"`
		Retained []uint64 `json:"retained_versions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.Version != 3 || len(detail.Retained) != 3 {
		t.Fatalf("detail = %+v, want version 3 retaining 3 versions", detail)
	}

	// Shutdown's final telemetry snapshot carries the ingest counters.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no shutdown after SIGTERM")
	}
	for _, metric := range []string{"serve.ingest.batches", "serve.ingest.duplicates", "serve.ingest.merges"} {
		if !strings.Contains(stderr.String(), metric) {
			t.Errorf("final snapshot missing %s; stderr: %s", metric, stderr)
		}
	}
}

// TestBadFlags covers the usage-error exits.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-demo", "positional"}, &out, &out); code != 2 {
		t.Errorf("positional arg: code = %d, want 2", code)
	}
	out.Reset()
	if code := run(nil, &out, &out); code != 2 {
		t.Errorf("no graphs: code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "no graphs") {
		t.Errorf("missing usage hint: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-graphs", "/nonexistent-dir-xyz"}, &out, &out); code != 1 {
		t.Errorf("empty graphs dir: code = %d, want 1", code)
	}
}

// TestOperationsDocCoversFlags asserts every flag the binary accepts is
// documented in OPERATIONS.md (as `-name`), so the operator guide cannot
// silently fall behind the flag set.
func TestOperationsDocCoversFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run([]string{"-h"}, &stdout, &stderr)
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	flags := regexp.MustCompile(`(?m)^\s+-([a-z][a-z0-9-]*)`).FindAllStringSubmatch(stderr.String(), -1)
	if len(flags) < 10 {
		t.Fatalf("parsed only %d flags from usage output:\n%s", len(flags), stderr.String())
	}
	for _, m := range flags {
		if !bytes.Contains(doc, []byte("`-"+m[1]+"`")) {
			t.Errorf("flag -%s is not documented in OPERATIONS.md", m[1])
		}
	}
}
