package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adjstream"
	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

// writeShards runs a 6-copy estimation as three shard files in dir and
// returns their paths plus the single-process Result they must merge into.
func writeShards(t *testing.T, dir string) ([]string, adjstream.Result) {
	t.Helper()
	g, err := gen.ErdosRenyi(60, 0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 4)
	opts := adjstream.Options{
		Algorithm:  adjstream.AlgoTwoPassTriangle,
		SampleProb: 0.5,
		Copies:     6,
		Parallel:   true,
		Seed:       13,
	}
	want, err := adjstream.Estimate(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := [][2]int{{0, 2}, {2, 5}, {5, 6}}
	paths := make([]string, len(bounds))
	for i, b := range bounds {
		snaps, err := adjstream.EstimateShardContext(context.Background(), s, opts, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.snap", i))
		if err := adjstream.WriteSnapshotFile(paths[i], b[0], snaps); err != nil {
			t.Fatal(err)
		}
	}
	return paths, want
}

func TestMergeHappyPath(t *testing.T) {
	paths, want := writeShards(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	// Shard order on the command line must not matter.
	if code := run([]string{paths[2], paths[0], paths[1]}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, line := range []string{
		"algorithm:   twopass-triangle",
		fmt.Sprintf("edges (m):   %d", want.M),
		fmt.Sprintf("passes:      %d", want.Passes),
		"copies:      6",
		fmt.Sprintf("space:       %d words", want.SpaceWords),
		fmt.Sprintf("estimate:    %.2f", want.Estimate),
	} {
		if !strings.Contains(out, line) {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

func TestMergeRejectsGapsAndDuplicates(t *testing.T) {
	paths, _ := writeShards(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	// Missing middle shard: copies 2..4 absent.
	if code := run([]string{paths[0], paths[2]}, &stdout, &stderr); code != 2 {
		t.Errorf("gap: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	stderr.Reset()
	// Same shard twice: duplicate copy indices.
	if code := run([]string{paths[0], paths[0], paths[1], paths[2]}, &stdout, &stderr); code != 2 {
		t.Errorf("duplicate: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

func TestMergeUsageAndIOErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.snap")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	// A file that is not a snapshot set fails cleanly.
	bogus := filepath.Join(t.TempDir(), "bogus.snap")
	if err := os.WriteFile(bogus, []byte("not a snapshot set"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bogus}, &stdout, &stderr); code != 1 {
		t.Errorf("bogus file: exit %d, want 1", code)
	}
}
