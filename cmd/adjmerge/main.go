// Command adjmerge merges per-copy snapshot files from a split median-of-k
// run into the single-process result.
//
// Each input file is a snapshot set written by cyclecount -snapshot (or
// adjstream.WriteSnapshotFile), covering some copy range of one logical run.
// The files together must cover copies 0..k-1 exactly once; adjmerge
// verifies the coverage, merges the snapshots, and prints the same summary
// lines cyclecount prints for the unsplit run — bit-identical estimate and
// summed space — so the two outputs diff clean.
//
// Usage:
//
//	cyclecount -algo twopass-triangle -prob 0.05 -copies 32 -copy-range 0:16  -snapshot a.snap graph.edges
//	cyclecount -algo twopass-triangle -prob 0.05 -copies 32 -copy-range 16:32 -snapshot b.snap graph.edges
//	adjmerge a.snap b.snap
//
// Exit codes: 0 success, 1 runtime failure (unreadable file), 2 usage or
// inconsistent input (gaps, overlaps, mixed algorithms, corrupt snapshots).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adjstream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adjmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: adjmerge <shard.snap>...")
		return 2
	}

	byIndex := map[int]adjstream.CopySnapshot{}
	from := map[int]string{}
	for _, path := range fs.Args() {
		indices, snaps, err := adjstream.ReadSnapshotFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "adjmerge:", err)
			return 1
		}
		for i, idx := range indices {
			if prev, dup := from[idx]; dup {
				fmt.Fprintf(stderr, "adjmerge: copy %d appears in both %s and %s\n", idx, prev, path)
				return 2
			}
			byIndex[idx] = snaps[i]
			from[idx] = path
		}
	}
	// The shards must tile [0, k) with no gaps: every index below the max
	// must be present.
	k := len(byIndex)
	ordered := make([]adjstream.CopySnapshot, k)
	for i := 0; i < k; i++ {
		snap, ok := byIndex[i]
		if !ok {
			fmt.Fprintf(stderr, "adjmerge: %d snapshots but copy %d is missing — shards do not cover 0..%d\n", k, i, k-1)
			return 2
		}
		ordered[i] = snap
	}

	algo, err := adjstream.SnapshotAlgorithm(ordered[0])
	if err != nil {
		fmt.Fprintln(stderr, "adjmerge:", err)
		return 2
	}
	res, err := adjstream.MergeSnapshots(ordered)
	if err != nil {
		fmt.Fprintln(stderr, "adjmerge:", err)
		return 2
	}
	fmt.Fprintf(stdout, "algorithm:   %s\n", algo)
	fmt.Fprintf(stdout, "edges (m):   %d\n", res.M)
	fmt.Fprintf(stdout, "passes:      %d\n", res.Passes)
	fmt.Fprintf(stdout, "copies:      %d\n", res.Copies)
	fmt.Fprintf(stdout, "space:       %d words\n", res.SpaceWords)
	fmt.Fprintf(stdout, "estimate:    %.2f\n", res.Estimate)
	return 0
}
