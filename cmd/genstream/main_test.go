package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"adjstream"
	"adjstream/internal/stream"
)

func TestRunAllKinds(t *testing.T) {
	kinds := []string{
		"er", "gnm", "complete", "bipartite", "chunglu", "ba", "planted",
		"books", "butterflies", "disjoint-triangles", "disjoint-c4",
		"torus", "regular", "smallworld", "plane",
	}
	for _, kind := range kinds {
		var out, errw bytes.Buffer
		args := []string{"-kind", kind, "-n", "20", "-m", "40", "-t", "5", "-side", "10", "-k", "2", "-q", "3"}
		if code := run(args, &out, &errw); code != 0 {
			t.Fatalf("%s: exit %d: %s", kind, code, errw.String())
		}
		g, err := adjstream.ReadEdgeList(&out)
		if err != nil {
			t.Fatalf("%s: parsing output: %v", kind, err)
		}
		if g.M() == 0 {
			t.Fatalf("%s: empty graph", kind)
		}
	}
}

func TestRunStreamFormats(t *testing.T) {
	dir := t.TempDir()
	txtPath := filepath.Join(dir, "g.stream")
	var out, errw bytes.Buffer
	if code := run([]string{"-kind", "complete", "-n", "6", "-format", "stream", "-order", "sorted", "-out", txtPath}, &out, &errw); code != 0 {
		t.Fatalf("exit: %s", errw.String())
	}
	s, err := adjstream.ReadStreamFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 15 {
		t.Fatalf("M = %d", s.M())
	}

	binPath := filepath.Join(dir, "g.adjb")
	out.Reset()
	errw.Reset()
	if code := run([]string{"-kind", "complete", "-n", "6", "-format", "binstream", "-out", binPath}, &out, &errw); code != 0 {
		t.Fatalf("exit: %s", errw.String())
	}
	f, err := os.Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s2, err := stream.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if s2.M() != 15 {
		t.Fatalf("binary M = %d", s2.M())
	}

	colPath := filepath.Join(dir, "g.adjc")
	out.Reset()
	errw.Reset()
	if code := run([]string{"-kind", "complete", "-n", "6", "-format", "colstream", "-order", "sorted", "-out", colPath}, &out, &errw); code != 0 {
		t.Fatalf("exit: %s", errw.String())
	}
	m, err := stream.OpenMapped(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.M() != 15 {
		t.Fatalf("columnar M = %d", m.M())
	}
	if got, want := m.Items(), s.Items(); len(got) != len(want) {
		t.Fatalf("columnar stream has %d items, text stream %d", len(got), len(want))
	}
}

// TestRunArbStream checks the arbitrary-order format: the output is a valid
// edge list covering the whole graph, deterministic in the seed, and not in
// sorted order (it is a shuffle).
func TestRunArbStream(t *testing.T) {
	gen := func(seed string) string {
		var out, errw bytes.Buffer
		if code := run([]string{"-kind", "complete", "-n", "8", "-format", "arbstream", "-seed", seed}, &out, &errw); code != 0 {
			t.Fatalf("exit: %s", errw.String())
		}
		return out.String()
	}
	first := gen("7")
	if gen("7") != first {
		t.Fatal("arbstream output is not deterministic in the seed")
	}
	if gen("8") == first {
		t.Fatal("arbstream output ignores the seed")
	}
	as, err := adjstream.ReadArbitraryStream(bytes.NewReader([]byte(first)))
	if err != nil {
		t.Fatal(err)
	}
	if as.M() != 28 || as.N() != 8 {
		t.Fatalf("arbstream m=%d n=%d, want 28, 8", as.M(), as.N())
	}
	var sorted bytes.Buffer
	if code := run([]string{"-kind", "complete", "-n", "8", "-seed", "7"}, &sorted, &bytes.Buffer{}); code != 0 {
		t.Fatal("edges format failed")
	}
	if first == sorted.String() {
		t.Fatal("arbstream output is in sorted order; expected a shuffle")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-format", "bogus", "-kind", "complete", "-n", "4"},
		{"-kind", "plane", "-q", "6"},              // not a prime power
		{"-kind", "regular", "-n", "5", "-k", "3"}, // odd n·d
	}
	for i, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code == 0 {
			t.Errorf("case %d: expected failure", i)
		}
	}
}
