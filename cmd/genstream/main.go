// Command genstream generates synthetic workload graphs (the repository's
// substitutes for the datasets the paper does not ship) and writes them as
// edge lists or adjacency-list streams (text or binary).
//
// Usage:
//
//	genstream -kind er -n 1000 -p 0.01 -out g.edges
//	genstream -kind planted -t 500 -side 100 -p 0.2 -format stream -out g.stream
//	genstream -kind torus -n 20 -side 20 -format binstream -out torus.adjb
//	genstream -kind plane -q 7 -out plane.edges
//	genstream -kind butterflies -format arbstream -out g.arb   # arbitrary-order edge stream
//
// The arbstream format writes the edge list in a seeded shuffle — the
// on-disk form of an arbitrary-order edge stream, replayed in file order by
// cyclecount -model arbitrary.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"adjstream"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/plane"
	"adjstream/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "er", "workload: er, gnm, complete, bipartite, chunglu, ba, planted, books, butterflies, disjoint-triangles, disjoint-c4, torus, regular, smallworld, plane")
	n := fs.Int("n", 100, "vertex count (er, gnm, complete, chunglu, ba, regular, smallworld) / torus rows")
	m := fs.Int64("m", 500, "edge count (gnm)")
	p := fs.Float64("p", 0.1, "edge probability / noise density / rewiring beta")
	t := fs.Int("t", 100, "planted cycle count / disjoint copies / book count")
	side := fs.Int("side", 50, "bipartite/noise side size / torus columns")
	k := fs.Int("k", 4, "degree parameter (ba, butterflies, regular, smallworld) / book size")
	q := fs.Int64("q", 5, "projective plane order (prime power)")
	gamma := fs.Float64("gamma", 2.5, "power-law exponent (chunglu)")
	seed := fs.Uint64("seed", 1, "seed")
	format := fs.String("format", "edges", "output format: edges, arbstream (seed-shuffled edge list for -model arbitrary runs), stream, binstream, or colstream (mmap-able columnar)")
	order := fs.String("order", "random", "stream order: sorted or random (with stream formats)")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := build(*kind, *n, *m, *p, *t, *side, *k, *q, *gamma, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "genstream:", err)
		return 1
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "genstream:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edges":
		err = adjstream.WriteEdgeList(w, g)
	case "arbstream":
		err = writeArbStream(w, g, *seed)
	case "stream", "binstream", "colstream":
		var s *adjstream.Stream
		if *order == "sorted" {
			s = adjstream.SortedStream(g)
		} else {
			s = adjstream.RandomStream(g, *seed)
		}
		switch *format {
		case "stream":
			err = adjstream.WriteStream(w, s)
		case "binstream":
			err = stream.WriteBinary(w, s)
		case "colstream":
			err = stream.WriteColumnar(w, s)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(stderr, "genstream:", err)
		return 1
	}
	fmt.Fprintf(stderr, "genstream: %s n=%d m=%d\n", *kind, g.N(), g.M())
	return 0
}

// writeArbStream emits g as an edge list in a seeded arbitrary order — the
// on-disk form of the arbitrary-order streaming model. cyclecount replays it
// in file order under -model arbitrary.
func writeArbStream(w io.Writer, g *graph.Graph, seed uint64) error {
	bw := bufio.NewWriter(w)
	for _, e := range adjstream.ArbitraryStreamFromGraph(g, seed).Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func build(kind string, n int, m int64, p float64, t, side, k int, q int64, gamma float64, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "er":
		return gen.ErdosRenyi(n, p, seed)
	case "gnm":
		return gen.GNM(n, m, seed)
	case "complete":
		return gen.Complete(n), nil
	case "bipartite":
		return gen.RandomBipartite(side, side, p, seed)
	case "chunglu":
		return gen.ChungLu(n, gamma, float64(k*10), seed)
	case "ba":
		return gen.BarabasiAlbert(n, k, seed)
	case "planted":
		return gen.PlantedTriangles(t, side, p, seed)
	case "books":
		return gen.PlantedBooks(t, k, side, p, seed)
	case "butterflies":
		return gen.BipartiteButterflies(n, side, k, seed)
	case "disjoint-triangles":
		return gen.DisjointTriangles(t), nil
	case "disjoint-c4":
		return gen.DisjointFourCycles(t), nil
	case "torus":
		return gen.Torus(n, side)
	case "regular":
		return gen.RandomRegular(n, k, seed)
	case "smallworld":
		return gen.WattsStrogatz(n, k, p, seed)
	case "plane":
		pl, err := plane.New(q)
		if err != nil {
			return nil, err
		}
		return pl.IncidenceGraph(0, graph.V(pl.Size()))
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
