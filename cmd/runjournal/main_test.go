package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"os"

	"adjstream/internal/exp"
	"adjstream/internal/telemetry"
)

// writeJournal runs one experiment with journaling on and returns the
// journal file path.
func writeJournal(t *testing.T) string {
	t.Helper()
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	exp.SetJournal(f)
	defer exp.SetJournal(nil)
	if _, err := exp.Run("F1", 1); err != nil {
		t.Fatalf("exp.Run: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCheck(t *testing.T) {
	path := writeJournal(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-check", path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("run -check = %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "ok: ") || !strings.Contains(out.String(), "5 grid points") {
		t.Errorf("unexpected -check output: %q", out.String())
	}
}

func TestRunSummaryAndRerender(t *testing.T) {
	path := writeJournal(t)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Run journal summary") || !strings.Contains(out.String(), "| F1 |") {
		t.Errorf("summary missing expected content:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-id", "F1", "-format", "csv", path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("run -id F1 = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "panel,") {
		t.Errorf("re-rendered CSV missing header:\n%s", out.String())
	}
}

func TestRunStdinAndErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	// Valid single record over stdin.
	in := `{"kind":"run","seed":3}` + "\n"
	if code := run([]string{"-check"}, strings.NewReader(in), &out, &errOut); code != 0 {
		t.Fatalf("stdin -check = %d, stderr: %s", code, errOut.String())
	}
	// Malformed journal fails.
	errOut.Reset()
	if code := run([]string{"-check"}, strings.NewReader(`{"kind":"?"}`+"\n"), &out, &errOut); code != 1 {
		t.Errorf("malformed journal: code = %d, want 1", code)
	}
	// Empty journal fails.
	if code := run([]string{"-check"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Errorf("empty journal: code = %d, want 1", code)
	}
	// Missing file fails.
	if code := run([]string{"-check", "/nonexistent/journal.jsonl"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Errorf("missing file: code = %d, want 1", code)
	}
}
