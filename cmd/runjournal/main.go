// Command runjournal validates and summarizes the JSONL run journals that
// `experiments -journal` emits. By default it prints one overview table
// (grid points, elapsed time, stream traversal work, and peak space words
// per experiment); -id re-renders the recorded grid points of one
// experiment as the original table; -check only validates and prints a
// record count, which is what the `make journal-smoke` CI target asserts.
//
// Usage:
//
//	runjournal [-check] [-id T1.R9|all] [-format markdown|csv] [FILE...]
//
// With no FILE arguments the journal is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adjstream/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// readAll parses the journals named by paths (stdin when empty) into one
// record sequence, in argument order.
func readAll(paths []string, stdin io.Reader) ([]exp.JournalRecord, error) {
	if len(paths) == 0 {
		return exp.ReadJournal(stdin)
	}
	var out []exp.JournalRecord
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		recs, err := exp.ReadJournal(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

func render(w io.Writer, tables []*exp.Table, format string, stderr io.Writer) int {
	for _, t := range tables {
		switch format {
		case "markdown":
			fmt.Fprintln(w, t.Markdown())
		case "csv":
			fmt.Fprintln(w, t.CSV())
		default:
			fmt.Fprintf(stderr, "runjournal: unknown format %q\n", format)
			return 1
		}
	}
	return 0
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runjournal", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "validate the journal and print a record count, no tables")
	id := fs.String("id", "", "re-render the recorded table of one experiment id ('all' for every one)")
	format := fs.String("format", "markdown", "output format: markdown or csv")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	recs, err := readAll(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "runjournal:", err)
		return 1
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "runjournal: empty journal")
		return 1
	}
	if *check {
		runs, points, exps := 0, 0, 0
		for _, r := range recs {
			switch r.Kind {
			case exp.KindRun:
				runs++
			case exp.KindGridPoint:
				points++
			case exp.KindExperiment:
				exps++
			}
		}
		fmt.Fprintf(stdout, "ok: %d records (%d runs, %d grid points, %d experiments)\n",
			len(recs), runs, points, exps)
		return 0
	}
	if *id != "" {
		tables, err := exp.JournalTables(recs, *id)
		if err != nil {
			fmt.Fprintln(stderr, "runjournal:", err)
			return 1
		}
		return render(stdout, tables, *format, stderr)
	}
	return render(stdout, []*exp.Table{exp.SummarizeJournal(recs)}, *format, stderr)
}
