// Command bench2json converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be archived and
// diffed (see `make bench-json`, which writes BENCH_<date>.json).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | bench2json -out BENCH.json
//
// Non-benchmark lines (PASS, ok, warnings) are ignored; context lines
// (goos, goarch, cpu, pkg) are recorded and attached to the benchmarks
// that follow them. Custom metrics emitted via b.ReportMetric (relerr,
// space-words, ...) are preserved alongside ns/op, B/op and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full JSON document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench reads `go test -bench` output and collects benchmark lines.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       fields[0],
			Pkg:        pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func run(in io.Reader, outPath string, now time.Time) error {
	rep, err := parseBench(in)
	if err != nil {
		return err
	}
	rep.Date = now.UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

func main() {
	out := flag.String("out", "-", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out, time.Now()); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
