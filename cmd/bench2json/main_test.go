package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: adjstream/internal/graph
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExactKernels/triangles/large/oracle         	     100	   5471161 ns/op	  643336 B/op	    7635 allocs/op
BenchmarkExactKernels/triangles/large/csr-seq-4      	    1000	   2915191 ns/op	      32 B/op	       2 allocs/op
PASS
ok  	adjstream/internal/graph	0.269s
pkg: adjstream
BenchmarkTable1Row01WedgeSampler-8 	      50	  20000 ns/op	 0.125 relerr	 4096 space-words
some stray line
ok  	adjstream	1.0s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.GOOS, rep.GOARCH)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkExactKernels/triangles/large/oracle" ||
		b0.Pkg != "adjstream/internal/graph" || b0.Iterations != 100 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 5471161 || b0.Metrics["allocs/op"] != 7635 {
		t.Errorf("b0 metrics = %v", b0.Metrics)
	}
	b2 := rep.Benchmarks[2]
	if b2.Pkg != "adjstream" {
		t.Errorf("pkg context not updated: %+v", b2)
	}
	if b2.Metrics["relerr"] != 0.125 || b2.Metrics["space-words"] != 4096 {
		t.Errorf("custom metrics lost: %v", b2.Metrics)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	rep, err := parseBench(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("got %d benchmarks, want 0", len(rep.Benchmarks))
	}
}
