// Command cyclecount estimates (or exactly counts) cycles in a graph
// presented as an adjacency-list stream, using any algorithm from the
// library.
//
// Usage:
//
//	cyclecount -algo twopass-triangle -prob 0.05 -copies 9 graph.edges
//	cyclecount -algo twopass-fourcycle -size 2000 -order random stream.txt
//	cyclecount -algo exact -len 5 graph.edges
//	cyclecount -model arbitrary -algo arb-threepass-fourcycle -prob 0.3 g.edges
//	cyclecount -compare graph.edges      # run every algorithm side by side
//
// The input is an edge-list file ("u v" per line) streamed in the chosen
// order, or — with -stream — a ready-made adjacency-list stream file.
//
// With -model arbitrary the run uses the arbitrary-order edge streaming
// model (see adjstream.ModelArbitrary): an edge-list input is replayed in
// file order (as genstream -format arbstream emits), and a -stream input is
// converted by first edge occurrence. The -algo roster is then the arb-*
// family (adjstream.AlgorithmsForModel).
//
// Exit codes: 0 success, 1 runtime failure, 2 usage or invalid options
// (adjstream.ErrInvalidOptions / ErrUnknownAlgorithm), 3 run canceled by
// -timeout or an interrupt (adjstream.ErrCanceled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"adjstream"
	"adjstream/internal/telemetry"
)

// exitCode maps an estimation error onto the documented exit codes via the
// library's sentinel taxonomy.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, adjstream.ErrInvalidOptions), errors.Is(err, adjstream.ErrUnknownAlgorithm):
		return 2
	case errors.Is(err, adjstream.ErrCanceled):
		return 3
	default:
		return 1
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// startProfiles begins CPU profiling and returns a stop function that ends
// it and writes a heap profile; empty paths disable the respective profile.
func startProfiles(cpuPath, memPath string, stderr io.Writer) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
			}
		}
	}, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cyclecount", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", string(adjstream.AlgoTwoPassTriangle), "algorithm: twopass-triangle, threepass-triangle, naive-twopass, onepass-triangle, wedge-sampler, twopass-fourcycle, exact; with -model arbitrary: arb-twopass-wedge, arb-buriol, arb-threepass-fourcycle, arb-nearopt-fourcycle")
	model := fs.String("model", string(adjstream.ModelAdjacencyList), "streaming model: adjacency-list or arbitrary (edge-list input replayed in file order)")
	size := fs.Int("size", 0, "bottom-k edge sample size m'")
	prob := fs.Float64("prob", 0, "per-edge sampling probability (alternative to -size)")
	pairCap := fs.Int("paircap", 0, "candidate pair/wedge reservoir cap (0 = default)")
	cycleLen := fs.Int("len", 3, "cycle length for -algo exact")
	copies := fs.Int("copies", 1, "independent copies, median-combined")
	parallel := fs.Bool("parallel", false, "run copies concurrently")
	driver := fs.String("driver", "broadcast", "parallel execution driver: broadcast (pull executor, single stream read per pass), push-broadcast (legacy channel fan-out), or replay (one read per copy)")
	copyRange := fs.String("copy-range", "", "run only copies [lo:hi) of the -copies run (requires -snapshot)")
	snapshot := fs.String("snapshot", "", "write per-copy snapshots to this file instead of printing an estimate; merge shards with adjmerge")
	seed := fs.Uint64("seed", 1, "seed for all randomness")
	order := fs.String("order", "sorted", "stream order for edge-list input: sorted or random")
	isStream := fs.Bool("stream", false, "input is an adjacency-list stream file (text, adj1 binary, or adjC columnar; columnar files are memory-mapped), not an edge list")
	compare := fs.Bool("compare", false, "run every algorithm at the given budget and tabulate")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	listen := fs.String("listen", "", "serve live telemetry (expvar + pprof) on this address, e.g. localhost:6060")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit); exits 3 on timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cyclecount [flags] <input-file>")
		fs.Usage()
		return 2
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return 1
	}
	defer stopProfiles()
	if *listen != "" {
		ln, err := telemetry.Listen(*listen)
		if err != nil {
			fmt.Fprintln(stderr, "cyclecount:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "cyclecount: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", ln.Addr())
	}

	arbitraryModel := adjstream.Model(*model) == adjstream.ModelArbitrary
	if arbitraryModel {
		if *compare {
			fmt.Fprintln(stderr, "cyclecount: -compare runs the adjacency-list roster; drop -model arbitrary")
			return 2
		}
		if *snapshot != "" || *copyRange != "" {
			fmt.Fprintln(stderr, "cyclecount: snapshots are adjacency-list only (arbitrary-order runs have no snapshot transport)")
			return 2
		}
	}
	// An edge-list input under the arbitrary model IS the stream: replay it
	// in file order rather than routing it through an adjacency-list order.
	arbFile := arbitraryModel && !*isStream
	var (
		s           *adjstream.Stream
		as          *adjstream.ArbitraryStream
		closeStream func() error
	)
	if arbFile {
		if *order != "sorted" {
			fmt.Fprintln(stderr, "cyclecount: -order selects an adjacency-list order; an arbitrary-model edge list is replayed in file order")
			return 2
		}
		as, err = loadArbitraryStream(fs.Arg(0))
		closeStream = func() error { return nil }
	} else {
		s, closeStream, err = loadStream(fs.Arg(0), *isStream, *order, *seed)
	}
	if err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return 1
	}
	defer closeStream()

	// The run context carries -timeout and Ctrl-C, so a too-slow pass is
	// abandoned at the next batch boundary instead of running to the end.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *compare {
		return runCompare(ctx, s, *size, *prob, *pairCap, *copies, *seed, stdout, stderr)
	}

	opts := adjstream.Options{
		Algorithm:  adjstream.Algorithm(*algo),
		SampleSize: *size,
		SampleProb: *prob,
		PairCap:    *pairCap,
		CycleLen:   *cycleLen,
		Copies:     *copies,
		Parallel:   *parallel,
		Driver:     adjstream.Driver(*driver),
		Seed:       *seed,
		Model:      adjstream.Model(*model),
	}
	if arbitraryModel {
		// Arbitrary-order runs have no driver; drop the flag default rather
		// than forcing users to pass -driver "".
		opts.Driver = ""
	}

	if *snapshot != "" {
		return runShard(ctx, s, opts, *copyRange, *snapshot, stdout, stderr)
	}
	if *copyRange != "" {
		fmt.Fprintln(stderr, "cyclecount: -copy-range requires -snapshot (a shard has no median to print)")
		return 2
	}

	var res adjstream.Result
	if arbFile {
		res, err = adjstream.EstimateArbitraryContext(ctx, as, opts)
	} else {
		res, err = adjstream.EstimateContext(ctx, s, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return exitCode(err)
	}
	fmt.Fprintf(stdout, "algorithm:   %s\n", *algo)
	if *model != string(adjstream.ModelAdjacencyList) {
		fmt.Fprintf(stdout, "model:       %s\n", *model)
	}
	fmt.Fprintf(stdout, "edges (m):   %d\n", res.M)
	fmt.Fprintf(stdout, "passes:      %d\n", res.Passes)
	fmt.Fprintf(stdout, "copies:      %d\n", res.Copies)
	fmt.Fprintf(stdout, "space:       %d words\n", res.SpaceWords)
	fmt.Fprintf(stdout, "estimate:    %.2f\n", res.Estimate)
	if res.Driver != "" {
		fmt.Fprintf(stdout, "driver:      %s\n", res.Driver)
	}
	if res.Driver == adjstream.DriverBroadcast {
		fmt.Fprintf(stdout, "stream reads: %d items (replay would read %d)\n",
			res.DriverStats.StreamItemsRead, res.DriverStats.ItemsDelivered)
	}
	return 0
}

func loadStream(path string, isStream bool, order string, seed uint64) (*adjstream.Stream, func() error, error) {
	if isStream {
		return adjstream.OpenStreamFile(path)
	}
	noop := func() error { return nil }
	g, err := adjstream.ReadEdgeListFile(path)
	if err != nil {
		return nil, nil, err
	}
	switch order {
	case "sorted":
		return adjstream.SortedStream(g), noop, nil
	case "random":
		return adjstream.RandomStream(g, seed), noop, nil
	default:
		return nil, nil, fmt.Errorf("unknown order %q", order)
	}
}

// loadArbitraryStream reads an edge-list file as an arbitrary-order stream,
// preserving the file's edge order.
func loadArbitraryStream(path string) (*adjstream.ArbitraryStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return adjstream.ReadArbitraryStream(f)
}

// parseCopyRange parses "lo:hi" into the half-open copy range [lo, hi).
func parseCopyRange(spec string, copies int) (lo, hi int, err error) {
	if spec == "" {
		return 0, copies, nil
	}
	if _, err := fmt.Sscanf(spec, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("copy range %q is not lo:hi", spec)
	}
	return lo, hi, nil
}

// runShard executes the copy range of a split run and writes the snapshot
// set; adjmerge combines shard files into the single-run output.
func runShard(ctx context.Context, s *adjstream.Stream, opts adjstream.Options, copyRange, path string, stdout, stderr io.Writer) int {
	lo, hi, err := parseCopyRange(copyRange, opts.Copies)
	if err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return 2
	}
	snaps, err := adjstream.EstimateShardContext(ctx, s, opts, lo, hi)
	if err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return exitCode(err)
	}
	if err := adjstream.WriteSnapshotFile(path, lo, snaps); err != nil {
		fmt.Fprintln(stderr, "cyclecount:", err)
		return 1
	}
	fmt.Fprintf(stdout, "snapshot:    %s (copies [%d:%d) of %d)\n", path, lo, hi, opts.Copies)
	return 0
}

func runCompare(ctx context.Context, s *adjstream.Stream, size int, prob float64, pairCap, copies int, seed uint64, stdout, stderr io.Writer) int {
	// Sensible default budget when none is given.
	if size == 0 && prob == 0 {
		size = int(s.M()/4) + 1
	}
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\testimate\tpasses\tspace (words)")
	for _, a := range adjstream.Algorithms() {
		opts := adjstream.Options{
			Algorithm:  a,
			SampleSize: size,
			SampleProb: prob,
			PairCap:    pairCap,
			Copies:     copies,
			Seed:       seed,
		}
		if a == adjstream.AlgoExact {
			opts.SampleSize, opts.SampleProb = 0, 0
		}
		if a == adjstream.AlgoAdaptiveTriangle {
			// The adaptive estimator budgets by sample size, not rate.
			opts.SampleProb = 0
			if opts.SampleSize == 0 {
				opts.SampleSize = int(s.M())
			}
		}
		res, err := adjstream.EstimateContext(ctx, s, opts)
		if err != nil {
			fmt.Fprintln(stderr, "cyclecount:", a, err)
			return exitCode(err)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\n", a, res.Estimate, res.Passes, res.SpaceWords)
	}
	w.Flush()
	return 0
}
