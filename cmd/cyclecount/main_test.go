package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adjstream"
	"adjstream/internal/gen"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "k6.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := adjstream.WriteEdgeList(f, gen.Complete(6)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExact(t *testing.T) {
	path := writeFixture(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-algo", "exact", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    20.00") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunTwoPassFullSample(t *testing.T) {
	path := writeFixture(t)
	var out, errw bytes.Buffer
	code := run([]string{"-algo", "twopass-triangle", "-prob", "1", "-copies", "3", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    20.00") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "passes:      2") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunStreamInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.stream")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := adjstream.WriteStream(f, adjstream.SortedStream(gen.Complete(5))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errw bytes.Buffer
	if code := run([]string{"-stream", "-algo", "exact", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    10.00") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestRunColumnarStreamInput drives the exact counter from a memory-mapped
// columnar stream file.
func TestRunColumnarStreamInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.adjc")
	if err := adjstream.WriteStreamFile(path, adjstream.SortedStream(gen.Complete(5))); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-stream", "-algo", "exact", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    10.00") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestRunArbitraryModel drives the arbitrary-order model from an edge-list
// file: at p = 1 the wedge estimator is exact, the model is echoed, and no
// driver line appears (arbitrary runs have none).
func TestRunArbitraryModel(t *testing.T) {
	path := writeFixture(t)
	var out, errw bytes.Buffer
	code := run([]string{"-model", "arbitrary", "-algo", "arb-twopass-wedge", "-prob", "1", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"model:       arbitrary", "estimate:    20.00", "passes:      2", "edges (m):   15"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "driver:") {
		t.Fatalf("arbitrary run printed a driver line:\n%s", out.String())
	}

	// The 4-cycle family over the same flag: K6 has 45 four-cycles.
	out.Reset()
	code = run([]string{"-model", "arbitrary", "-algo", "arb-threepass-fourcycle", "-prob", "1", "-copies", "3", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("fourcycle exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    45.00") || !strings.Contains(out.String(), "passes:      3") {
		t.Fatalf("fourcycle output:\n%s", out.String())
	}
}

// TestRunArbitraryModelStreamInput converts a -stream input by first edge
// occurrence and routes it through the model axis in Options.
func TestRunArbitraryModelStreamInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.stream")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := adjstream.WriteStream(f, adjstream.SortedStream(gen.Complete(5))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errw bytes.Buffer
	code := run([]string{"-stream", "-model", "arbitrary", "-algo", "arb-nearopt-fourcycle", "-prob", "1", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "estimate:    15.00") { // K5 has 15 four-cycles
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestRunArbitraryModelRejections pins exit code 2 for flag combinations the
// arbitrary model does not support.
func TestRunArbitraryModelRejections(t *testing.T) {
	path := writeFixture(t)
	cases := [][]string{
		{"-model", "bogus", "-algo", "exact", path},
		{"-model", "arbitrary", "-compare", path},
		{"-model", "arbitrary", "-algo", "arb-twopass-wedge", "-prob", "1", "-snapshot", "s.snap", path},
		{"-model", "arbitrary", "-algo", "arb-twopass-wedge", "-prob", "1", "-copy-range", "0:1", path},
		{"-model", "arbitrary", "-algo", "arb-twopass-wedge", "-prob", "1", "-order", "random", path},
		{"-model", "arbitrary", "-algo", "exact", path},             // AL algorithm under arbitrary
		{"-model", "arbitrary", "-algo", "arb-twopass-wedge", path}, // missing rate
		{"-algo", "arb-twopass-wedge", "-prob", "1", path},          // arb algorithm without the model
	}
	for i, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("case %d (%v): code = %d, want 2 (stderr %q)", i, args, code, errw.String())
		}
	}
}

func TestRunCompare(t *testing.T) {
	path := writeFixture(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-compare", "-prob", "1", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, a := range adjstream.Algorithms() {
		if !strings.Contains(out.String(), string(a)) {
			t.Fatalf("compare output missing %s:\n%s", a, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	cases := [][]string{
		{},                                  // missing file
		{"-algo", "bogus", path},            // unknown algorithm
		{"-order", "bogus", path},           // unknown order
		{"-algo", "twopass-triangle", path}, // no sampling parameter
		{"/does/not/exist"},                 // missing input
	}
	for i, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code == 0 {
			t.Errorf("case %d: expected failure", i)
		}
	}
}

// TestExitCodes pins the documented exit-code mapping: 2 for invalid
// options, 3 for a -timeout abort, 0 for success.
func TestExitCodes(t *testing.T) {
	path := writeFixture(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-algo", "bogus", path}, &out, &errw); code != 2 {
		t.Errorf("unknown algorithm: code = %d, want 2", code)
	}
	errw.Reset()
	if code := run([]string{"-algo", "exact", "-timeout", "1ns", path}, &out, &errw); code != 3 {
		t.Errorf("timeout: code = %d, want 3 (stderr %q)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "canceled") {
		t.Errorf("timeout stderr = %q, want a cancellation message", errw.String())
	}
	out.Reset()
	if code := run([]string{"-algo", "exact", "-timeout", "1m", path}, &out, &errw); code != 0 {
		t.Errorf("within timeout: code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "estimate:    20.00") {
		t.Errorf("missing estimate in output: %s", out.String())
	}
}
