package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"T1.R1", "T1.R12", "F1", "M1", "A5"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunFigure1Markdown(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-id", "F1"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "### F1") || !strings.Contains(out.String(), "| 1e |") {
		t.Fatalf("markdown output:\n%s", out.String())
	}
}

func TestRunFigure1CSV(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-id", "F1", "-format", "csv"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "# F1:") || !strings.Contains(out.String(), "panel,game") {
		t.Fatalf("csv output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-id", "nope"}, &out, &errw); code == 0 {
		t.Error("unknown id should fail")
	}
	if code := run([]string{"-id", "F1", "-format", "bogus"}, &out, &errw); code == 0 {
		t.Error("unknown format should fail")
	}
}
