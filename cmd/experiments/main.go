// Command experiments regenerates the paper's evaluation: every Table 1
// row (upper bounds measured at their space budgets, lower bounds as
// executable reductions with verified dichotomies), the Figure 1 gadget
// summary, the model comparison, and the DESIGN.md ablations. Output is
// Markdown (the source of EXPERIMENTS.md) or CSV.
//
// Usage:
//
//	experiments [-seed N] [-id T1.R6|F1|M1|A3|all] [-format markdown|csv] [-out FILE]
//	            [-journal FILE] [-listen ADDR]
//
// -journal appends a JSONL run journal (provenance header, one record per
// grid point, per-experiment telemetry snapshot) that cmd/runjournal can
// validate and re-summarize. -listen serves the live telemetry registry
// over expvar plus net/http/pprof while the run executes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"adjstream/internal/exp"
	"adjstream/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// startProfiles begins CPU profiling and returns a stop function that ends
// it and writes a heap profile; empty paths disable the respective profile.
func startProfiles(cpuPath, memPath string, stderr io.Writer) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
			}
		}
	}, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "seed for all randomness")
	id := fs.String("id", "all", "experiment id (see DESIGN.md) or 'all'")
	format := fs.String("format", "markdown", "output format: markdown or csv")
	out := fs.String("out", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	driver := fs.String("driver", "broadcast", "multi-copy execution driver: broadcast (pull executor), push-broadcast (legacy fan-out), or replay")
	driverStats := fs.Bool("driverstats", false, "append the driver-counter table (stream reads, batches, queue depth) after the experiments")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	journal := fs.String("journal", "", "append a JSONL run journal to this file (enables telemetry)")
	listen := fs.String("listen", "", "serve live telemetry (expvar + pprof) on this address, e.g. localhost:6060")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	defer stopProfiles()
	if err := exp.SetDriver(*driver); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}
	if *listen != "" {
		ln, err := telemetry.Listen(*listen)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "experiments: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", ln.Addr())
	}
	if *journal != "" {
		telemetry.Enable()
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		exp.SetJournal(f)
		defer exp.SetJournal(nil)
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Fprintln(stdout, e.ID)
		}
		return 0
	}
	tables, err := exp.Run(*id, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if *driverStats {
		tables = append(tables, exp.DriverReport())
	}
	for _, t := range tables {
		switch *format {
		case "markdown":
			fmt.Fprintln(w, t.Markdown())
		case "csv":
			fmt.Fprintln(w, t.CSV())
		default:
			fmt.Fprintf(stderr, "experiments: unknown format %q\n", *format)
			return 1
		}
	}
	return 0
}
