package adjstream

// Batch-path equality tests: the columnar EdgeBatch fast path must be
// bit-identical to the legacy item-at-a-time path for every estimator in
// internal/core and internal/baseline under every driver. The item path is
// obtained by hiding EdgeBatch behind stream.ItemOnly; any divergence in
// estimate or space therefore isolates a bug in an EdgeBatch loop or in a
// driver's batch dispatch.

import (
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

// batchEquivStream returns a fixed-seed stream that spans multiple chunks
// (len > DefaultChunkItems), so EdgeBatch loops cross chunk boundaries
// mid-adjacency-list.
func batchEquivStream(t *testing.T) *stream.Stream {
	t.Helper()
	g, err := gen.ErdosRenyi(120, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 5)
	if s.Chunks() == nil {
		t.Fatal("stream unexpectedly has no columnar form")
	}
	if s.Len() <= stream.DefaultChunkItems {
		t.Fatalf("stream has %d items; want > %d to cross chunk boundaries", s.Len(), stream.DefaultChunkItems)
	}
	return s
}

// TestBatchPathMatchesItemPathSequential pins the sequential driver: for
// each estimator, Run on the bare estimator (batch path) equals Run on the
// ItemOnly wrapper (item path).
func TestBatchPathMatchesItemPathSequential(t *testing.T) {
	s := batchEquivStream(t)
	for _, tc := range estimatorRoster(s.M()) {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 1789
			batch, err := tc.mk(seed)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := batch.(stream.BatchAlgorithm); !ok {
				t.Fatalf("%s does not implement stream.BatchAlgorithm", tc.name)
			}
			item, err := tc.mk(seed)
			if err != nil {
				t.Fatal(err)
			}
			stream.Run(s, batch)
			stream.Run(s, stream.ItemOnly(item))
			if got, want := batch.Estimate(), item.Estimate(); got != want {
				t.Errorf("batch estimate %v != item estimate %v", got, want)
			}
			if got, want := batch.SpaceWords(), item.SpaceWords(); got != want {
				t.Errorf("batch space %d != item space %d", got, want)
			}
		})
	}
}

// TestBatchPathMatchesItemPathBroadcast pins the broadcast driver at both
// the default config (whole-chunk batches) and a batch size that splits
// lists mid-batch, against the sequential item path.
func TestBatchPathMatchesItemPathBroadcast(t *testing.T) {
	s := batchEquivStream(t)
	cfgs := []stream.BroadcastConfig{
		{},
		{BatchSize: 37, Workers: 2},
	}
	const k = 4
	for _, tc := range estimatorRoster(s.M()) {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 271828
			ref, err := tc.mk(seed)
			if err != nil {
				t.Fatal(err)
			}
			stream.Run(s, stream.ItemOnly(ref))
			for _, cfg := range cfgs {
				batched := make([]stream.Estimator, k)
				itemized := make([]stream.Estimator, k)
				for i := 0; i < k; i++ {
					a, err := tc.mk(seed)
					if err != nil {
						t.Fatal(err)
					}
					b, err := tc.mk(seed)
					if err != nil {
						t.Fatal(err)
					}
					batched[i] = a
					itemized[i] = stream.ItemOnly(b)
				}
				stream.RunBroadcastConfig(s, batched, cfg)
				stream.RunBroadcastConfig(s, itemized, cfg)
				for i := 0; i < k; i++ {
					if got, want := batched[i].Estimate(), ref.Estimate(); got != want {
						t.Errorf("cfg=%+v copy %d: batch broadcast estimate %v != sequential item %v", cfg, i, got, want)
					}
					if got, want := itemized[i].Estimate(), ref.Estimate(); got != want {
						t.Errorf("cfg=%+v copy %d: itemized broadcast estimate %v != sequential item %v", cfg, i, got, want)
					}
					if got, want := batched[i].SpaceWords(), ref.SpaceWords(); got != want {
						t.Errorf("cfg=%+v copy %d: batch broadcast space %d != sequential item %d", cfg, i, got, want)
					}
				}
			}
		})
	}
}

// TestBatchPathMatchesItemPathReplay pins the parallel replay driver, whose
// workers run the sequential pass loop (and hence the batch dispatch) per
// copy.
func TestBatchPathMatchesItemPathReplay(t *testing.T) {
	s := batchEquivStream(t)
	const k = 3
	for _, tc := range estimatorRoster(s.M()) {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 31415
			ref, err := tc.mk(seed)
			if err != nil {
				t.Fatal(err)
			}
			stream.Run(s, stream.ItemOnly(ref))
			copies := make([]stream.Estimator, k)
			for i := 0; i < k; i++ {
				a, err := tc.mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				copies[i] = a
			}
			stream.RunParallel(s, copies)
			for i := 0; i < k; i++ {
				if got, want := copies[i].Estimate(), ref.Estimate(); got != want {
					t.Errorf("copy %d: replay batch estimate %v != sequential item %v", i, got, want)
				}
				if got, want := copies[i].SpaceWords(), ref.SpaceWords(); got != want {
					t.Errorf("copy %d: replay batch space %d != sequential item %d", i, got, want)
				}
			}
		})
	}
}
