package adjstream

// Equivalence and cancellation tests for the context-aware API v2. The
// contract under test: with a context that never fires, EstimateContext,
// DistinguishContext, and LocalEstimateContext are bit-identical to their
// context-free wrappers for every algorithm and both drivers (the context
// checks live at batch boundaries and must not perturb a single number);
// and once a context fires, every entry point surfaces ErrCanceled, wraps
// the context's own error, and leaks no goroutines.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"adjstream/internal/gen"
)

// ctxOpts returns a deterministic mid-size configuration for algo.
func ctxOpts(algo Algorithm) Options {
	o := Options{Algorithm: algo, Seed: 31}
	switch algo {
	case AlgoWedgeSampler:
		o.SampleProb = 0.5
		o.PairCap = 1 << 14
	case AlgoExact:
		o.CycleLen = 3
	default:
		o.SampleSize = 64
	}
	return o
}

// driverVariants enumerates the execution shapes every algorithm must agree
// across: sequential, and parallel median-of-5 under both drivers.
func driverVariants(o Options) map[string]Options {
	seq := o
	broadcast, replay := o, o
	broadcast.Copies, broadcast.Parallel, broadcast.Driver = 5, true, DriverBroadcast
	replay.Copies, replay.Parallel, replay.Driver = 5, true, DriverReplay
	return map[string]Options{"sequential": seq, "broadcast": broadcast, "replay": replay}
}

func equivStream(t *testing.T) *Stream {
	t.Helper()
	g, err := gen.ErdosRenyi(150, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	return RandomStream(g, 7)
}

// waitGoroutines waits for the goroutine count to come back to (at most)
// base, tolerating runtime background noise via a deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d baseline", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEstimateContextNeverCancelledIsBitIdentical runs every algorithm ×
// every driver shape under a live (cancellable but never cancelled)
// context and requires results bit-identical to the wrapper path, which
// takes the pre-context fast loops.
func TestEstimateContextNeverCancelledIsBitIdentical(t *testing.T) {
	s := equivStream(t)
	for _, algo := range Algorithms() {
		for shape, opts := range driverVariants(ctxOpts(algo)) {
			t.Run(string(algo)+"/"+shape, func(t *testing.T) {
				want, err := Estimate(s, opts)
				if err != nil {
					t.Fatalf("Estimate: %v", err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				got, err := EstimateContext(ctx, s, opts)
				if err != nil {
					t.Fatalf("EstimateContext: %v", err)
				}
				if got != want {
					t.Errorf("EstimateContext %+v != Estimate %+v", got, want)
				}
			})
		}
	}
}

// TestEstimateContextCanceledBeforeStart requires every algorithm × driver
// shape to fail with ErrCanceled (wrapping context.Canceled) when the
// context is already dead, without leaking goroutines.
func TestEstimateContextCanceledBeforeStart(t *testing.T) {
	s := equivStream(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range Algorithms() {
		for shape, opts := range driverVariants(ctxOpts(algo)) {
			t.Run(string(algo)+"/"+shape, func(t *testing.T) {
				base := runtime.NumGoroutine()
				_, err := EstimateContext(ctx, s, opts)
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("err = %v, want ErrCanceled", err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v does not wrap context.Canceled", err)
				}
				waitGoroutines(t, base)
			})
		}
	}
}

// TestEstimateContextDeadlineMidRun cancels a parallel broadcast run by
// deadline while it is (very likely) mid-pass: on cancellation the error
// chain must carry both sentinels and all driver goroutines must drain.
func TestEstimateContextDeadlineMidRun(t *testing.T) {
	g, err := gen.ErdosRenyi(400, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := SortedStream(g)
	opts := ctxOpts(AlgoTwoPassTriangle)
	opts.Copies, opts.Parallel, opts.Driver = 8, true, DriverBroadcast
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := EstimateContext(ctx, s, opts); err != nil {
		// The run may rarely finish inside the deadline; when it does
		// not, the chain must be fully typed.
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
		}
	}
	waitGoroutines(t, base)
}

// TestDistinguishDriverPathEquivalence checks satellite 3's routing: the
// decision problem honors Copies/Parallel/Driver, both drivers agree
// bit-for-bit, and the context-free wrapper matches the single-copy path.
func TestDistinguishDriverPathEquivalence(t *testing.T) {
	s := equivStream(t)
	for _, cycleLen := range []int{3, 4, 5} {
		opts := Options{SampleSize: 64, Copies: 5, Parallel: true, Seed: 17}
		opts.Driver = DriverBroadcast
		if cycleLen >= 5 {
			opts.SampleSize = 0 // exact counter takes no budget
		}
		fb, rb, err := DistinguishContext(context.Background(), s, cycleLen, opts)
		if err != nil {
			t.Fatalf("len %d broadcast: %v", cycleLen, err)
		}
		opts.Driver = DriverReplay
		fr, rr, err := DistinguishContext(context.Background(), s, cycleLen, opts)
		if err != nil {
			t.Fatalf("len %d replay: %v", cycleLen, err)
		}
		if fb != fr || rb.Estimate != rr.Estimate || rb.SpaceWords != rr.SpaceWords || rb.Passes != rr.Passes {
			t.Errorf("len %d: broadcast (%v %+v) != replay (%v %+v)", cycleLen, fb, rb, fr, rr)
		}
		if rb.Copies != 5 {
			t.Errorf("len %d: Copies = %d, want 5 (driver path not honored)", cycleLen, rb.Copies)
		}

		// The legacy wrapper is exactly the single-copy context path.
		wf, wr, err := Distinguish(s, cycleLen, 64, 17)
		if err != nil {
			t.Fatalf("len %d wrapper: %v", cycleLen, err)
		}
		cf, cr, err := DistinguishContext(context.Background(), s, cycleLen, Options{SampleSize: 64, Seed: 17})
		if err != nil {
			t.Fatalf("len %d context single: %v", cycleLen, err)
		}
		if wf != cf || wr != cr {
			t.Errorf("len %d: Distinguish (%v %+v) != DistinguishContext (%v %+v)", cycleLen, wf, wr, cf, cr)
		}
	}
}

// TestLocalEstimateDriverPathEquivalence checks the same routing for the
// local (per-vertex) estimator: both drivers and the sequential path agree
// on every vertex, and the wrapper matches the context path.
func TestLocalEstimateDriverPathEquivalence(t *testing.T) {
	s := equivStream(t)
	const p = 0.5
	base := Options{Copies: 5, Seed: 23}
	bcast, replay := base, base
	bcast.Parallel, bcast.Driver = true, DriverBroadcast
	replay.Parallel, replay.Driver = true, DriverReplay

	counts := make(map[string]map[V]float64)
	results := make(map[string]Result)
	for shape, opts := range map[string]Options{"sequential": base, "broadcast": bcast, "replay": replay} {
		m, res, err := LocalEstimateContext(context.Background(), s, p, opts)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		counts[shape], results[shape] = m, res
	}
	for _, shape := range []string{"broadcast", "replay"} {
		if len(counts[shape]) != len(counts["sequential"]) {
			t.Fatalf("%s: %d vertices != sequential %d", shape, len(counts[shape]), len(counts["sequential"]))
		}
		for v, want := range counts["sequential"] {
			if got := counts[shape][v]; got != want {
				t.Errorf("%s: vertex %d = %v, want %v", shape, v, got, want)
			}
		}
		if results[shape].Estimate != results["sequential"].Estimate ||
			results[shape].SpaceWords != results["sequential"].SpaceWords {
			t.Errorf("%s result %+v != sequential %+v", shape, results[shape], results["sequential"])
		}
	}

	wm, wr, err := LocalEstimate(s, p, 23)
	if err != nil {
		t.Fatalf("LocalEstimate: %v", err)
	}
	cm, cr, err := LocalEstimateContext(context.Background(), s, p, Options{Seed: 23})
	if err != nil {
		t.Fatalf("LocalEstimateContext: %v", err)
	}
	if wr != cr || len(wm) != len(cm) {
		t.Fatalf("wrapper (%d vertices, %+v) != context (%d vertices, %+v)", len(wm), wr, len(cm), cr)
	}
	for v, want := range cm {
		if wm[v] != want {
			t.Errorf("vertex %d: wrapper %v != context %v", v, wm[v], want)
		}
	}
}

// TestSentinelErrors pins the exported error taxonomy: Validate and the
// entry points agree, and everything is matchable with errors.Is.
func TestSentinelErrors(t *testing.T) {
	s := equivStream(t)
	cases := []struct {
		name string
		opts Options
		want error
	}{
		{"empty algorithm", Options{}, ErrInvalidOptions},
		{"unknown algorithm", Options{Algorithm: "nope"}, ErrUnknownAlgorithm},
		{"unknown driver", Options{Algorithm: AlgoExact, Driver: "carrier-pigeon"}, ErrInvalidOptions},
		{"negative copies", Options{Algorithm: AlgoExact, Copies: -1}, ErrInvalidOptions},
		{"copies and confidence", Options{Algorithm: AlgoExact, Copies: 3, Confidence: 0.9}, ErrInvalidOptions},
		{"confidence out of range", Options{Algorithm: AlgoExact, Confidence: 1.5}, ErrInvalidOptions},
		{"negative sample size", Options{Algorithm: AlgoNaiveTwoPass, SampleSize: -1}, ErrInvalidOptions},
		{"sample prob out of range", Options{Algorithm: AlgoWedgeSampler, SampleProb: 2}, ErrInvalidOptions},
		{"cycle length too short", Options{Algorithm: AlgoExact, CycleLen: 2}, ErrInvalidOptions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opts.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want %v", err, tc.want)
			}
			if _, err := Estimate(s, tc.opts); !errors.Is(err, tc.want) {
				t.Errorf("Estimate() = %v, want %v", err, tc.want)
			}
			if _, err := NewEstimator(tc.opts); !errors.Is(err, tc.want) {
				t.Errorf("NewEstimator() = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := Estimate(s, ctxOpts(AlgoExact)); err != nil {
		t.Fatalf("valid options: %v", err)
	}
	if _, _, err := DistinguishContext(context.Background(), s, 2, Options{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("cycleLen 2: %v, want ErrInvalidOptions", err)
	}
	if _, _, err := DistinguishContext(context.Background(), s, 3, Options{Algorithm: AlgoExact}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Distinguish with Algorithm set: %v, want ErrInvalidOptions", err)
	}
	if _, _, err := LocalEstimateContext(context.Background(), s, 0.5, Options{SampleSize: 9}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("LocalEstimate with SampleSize set: %v, want ErrInvalidOptions", err)
	}
}
