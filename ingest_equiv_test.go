package adjstream_test

// Concurrent-ingest equivalence: while a flood of edge batches advances a
// graph through versions, every estimate the server admits pins exactly one
// published snapshot — so replaying the same request against a cold catalog
// seeded with that version's graph (serve.Catalog.AddAt) must reproduce the
// response byte-for-byte (elapsed_ms aside), for every algorithm under
// sequential, pull-broadcast, and replay execution, and through a
// 3-replica cluster. Run with -race: the flood and the estimators hammer
// the same MutableDataset.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adjstream"
	"adjstream/internal/cluster"
	"adjstream/internal/gen"
	"adjstream/internal/serve"
)

// edgeKey orders an undirected edge canonically.
func edgeKey(u, v int64) [2]int64 {
	if u > v {
		u, v = v, u
	}
	return [2]int64{u, v}
}

// liveGraph is the seed graph every node starts from.
func liveGraph(t *testing.T) (*adjstream.Graph, map[[2]int64]bool) {
	t.Helper()
	g, err := gen.ErdosRenyi(60, 0.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	edges := make(map[[2]int64]bool)
	for _, e := range g.Edges() {
		edges[edgeKey(int64(e.U), int64(e.V))] = true
	}
	return g, edges
}

// rebuild turns a recorded edge set back into a Graph for the cold catalog.
func rebuild(t *testing.T, edges map[[2]int64]bool) *adjstream.Graph {
	t.Helper()
	es := make([]adjstream.Edge, 0, len(edges))
	for e := range edges {
		es = append(es, adjstream.Edge{U: adjstream.V(e[0]), V: adjstream.V(e[1])})
	}
	g, err := adjstream.FromEdges(es)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// floodBatches drives nBatches single-op flushed edge batches through
// baseURL's live graph, alternating adds of new edges among the original
// vertices with removals of edges a previous batch added (so no original
// vertex ever loses its last edge and the vertex set stays fixed). It
// returns the edge set of every published version; version 1 is the seed.
func floodBatches(t *testing.T, baseURL string, seedEdges map[[2]int64]bool, nBatches int) map[uint64]map[[2]int64]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	cur := make(map[[2]int64]bool, len(seedEdges))
	for e := range seedEdges {
		cur[e] = true
	}
	snapshot := func() map[[2]int64]bool {
		c := make(map[[2]int64]bool, len(cur))
		for e := range cur {
			c[e] = true
		}
		return c
	}
	versions := map[uint64]map[[2]int64]bool{1: snapshot()}
	var added [][2]int64

	for i := 0; i < nBatches; i++ {
		req := serve.EdgeBatchRequest{BatchID: fmt.Sprintf("flood-%d", i), Flush: true}
		if len(added) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(added))
			e := added[j]
			added = append(added[:j], added[j+1:]...)
			req.Remove = [][2]int64{e}
			delete(cur, e)
		} else {
			var e [2]int64
			for {
				e = edgeKey(int64(rng.Intn(60)), int64(rng.Intn(60)))
				if e[0] != e[1] && !cur[e] {
					break
				}
			}
			req.Add = [][2]int64{e}
			added = append(added, e)
			cur[e] = true
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(baseURL+"/v1/graphs/live/edges", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		var out serve.EdgeBatchResponse
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flood batch %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Merged {
			t.Fatalf("flood batch %d did not merge: %+v", i, out)
		}
		versions[out.GraphVersion] = snapshot()
	}
	return versions
}

// estimateBodies builds the request matrix: every algorithm × {sequential,
// pull-broadcast, replay}.
func estimateBodies() []string {
	var bodies []string
	for _, algo := range adjstream.Algorithms() {
		for _, mode := range []map[string]any{
			{"parallel": false},
			{"parallel": true, "driver": string(adjstream.DriverBroadcast)},
			{"parallel": true, "driver": string(adjstream.DriverReplay)},
		} {
			req := map[string]any{
				"graph":     "live",
				"algorithm": string(algo),
				"copies":    3,
				"seed":      23,
			}
			if algo != adjstream.AlgoExact {
				req["sample_size"] = 48
				req["pair_cap"] = 256
			}
			for k, v := range mode {
				req[k] = v
			}
			b, _ := json.Marshal(req)
			bodies = append(bodies, string(b))
		}
	}
	return bodies
}

// recorded is one admitted estimate: the request body, the version it ran
// against, and the canonical response (elapsed_ms stripped).
type recorded struct {
	body     string
	version  uint64
	response string
}

// canonicalEstimate POSTs body and returns the pinned version and the
// response with elapsed_ms removed. It returns an error (rather than
// failing t) because the estimator goroutines call it concurrently.
func canonicalEstimate(baseURL, body string) (uint64, string, error) {
	resp, err := http.Post(baseURL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", fmt.Errorf("POST estimate: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("estimate status %d: %s", resp.StatusCode, raw)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, "", fmt.Errorf("decode %s: %w", raw, err)
	}
	delete(m, "elapsed_ms")
	version, _ := m["graph_version"].(float64)
	out, err := json.Marshal(m)
	if err != nil {
		return 0, "", err
	}
	return uint64(version), string(out), nil
}

// verifyAgainstColdCatalogs replays every recorded estimate against a fresh
// catalog seeded (via AddAt) with exactly the graph version the live run
// pinned, and demands byte-identity.
func verifyAgainstColdCatalogs(t *testing.T, recs []recorded, versions map[uint64]map[[2]int64]bool) {
	t.Helper()
	byVersion := make(map[uint64][]recorded)
	for _, r := range recs {
		byVersion[r.version] = append(byVersion[r.version], r)
	}
	for version, rs := range byVersion {
		edges, ok := versions[version]
		if !ok {
			t.Errorf("estimate pinned version %d, which the flood never published", version)
			continue
		}
		cat := serve.NewCatalog()
		if _, err := cat.AddAt("live", rebuild(t, edges), version); err != nil {
			t.Fatal(err)
		}
		cold := httptest.NewServer(serve.New(cat, serve.Config{CacheEntries: -1}).Handler())
		seen := make(map[string]string)
		for _, r := range rs {
			want, ok := seen[r.body]
			if !ok {
				var err error
				if _, want, err = canonicalEstimate(cold.URL, r.body); err != nil {
					t.Fatalf("cold catalog at version %d: %v", version, err)
				}
				seen[r.body] = want
			}
			if r.response != want {
				t.Errorf("version %d: live response differs from cold catalog\nbody: %s\nlive: %s\ncold: %s",
					version, r.body, r.response, want)
			}
		}
		cold.Close()
	}
}

// runFloodWithEstimators floods baseURL while estimator goroutines hammer
// the same graph, and returns the recordings plus the version history.
func runFloodWithEstimators(t *testing.T, baseURL string, seedEdges map[[2]int64]bool, nBatches int) ([]recorded, map[uint64]map[[2]int64]bool) {
	t.Helper()
	bodies := estimateBodies()
	done := make(chan struct{})
	var mu sync.Mutex
	var recs []recorded
	var errs []error
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			for {
				version, resp, err := canonicalEstimate(baseURL, body)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					recs = append(recs, recorded{body, version, resp})
				}
				mu.Unlock()
				select {
				case <-done:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}(body)
	}
	versions := floodBatches(t, baseURL, seedEdges, nBatches)
	close(done)
	wg.Wait()
	for _, err := range errs {
		t.Errorf("estimate during flood: %v", err)
	}
	return recs, versions
}

func TestIngestEquivalenceSingleNode(t *testing.T) {
	g, seedEdges := liveGraph(t)
	cat := serve.NewCatalog()
	cat.SetMergePolicy(1<<20, 64) // only flushes merge; retain everything
	if _, err := cat.Add("live", g); err != nil {
		t.Fatal(err)
	}
	// The estimator matrix outnumbers the worker pool; a deep queue keeps
	// admission from shedding load mid-test.
	ts := httptest.NewServer(serve.New(cat, serve.Config{CacheEntries: -1, Queue: 256}).Handler())
	defer ts.Close()

	recs, versions := runFloodWithEstimators(t, ts.URL, seedEdges, 24)
	if len(recs) < len(estimateBodies()) {
		t.Fatalf("only %d estimates recorded", len(recs))
	}
	verifyAgainstColdCatalogs(t, recs, versions)
}

// TestIngestEquivalenceCluster runs the same flood through a proxy backed
// by three replicas: batches fan out to the whole fleet, sharded estimates
// pin the proxy's version, and every admitted response must still match a
// cold single-node catalog of that version.
func TestIngestEquivalenceCluster(t *testing.T) {
	newNode := func() *serve.Catalog {
		g, _ := liveGraph(t)
		cat := serve.NewCatalog()
		cat.SetMergePolicy(1<<20, 64)
		if _, err := cat.Add("live", g); err != nil {
			t.Fatal(err)
		}
		return cat
	}
	urls := make([]string, 3)
	for i := range urls {
		rep := httptest.NewServer(serve.New(newNode(), serve.Config{Queue: 256}).Handler())
		t.Cleanup(rep.Close)
		urls[i] = rep.URL
	}
	sched, err := cluster.New(cluster.Config{
		Replicas: urls, ProbeInterval: -1, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	proxy := httptest.NewServer(serve.New(newNode(), serve.Config{
		CacheEntries: -1, Queue: 256, Remote: sched.Run, RemoteIngest: sched.Mutate,
	}).Handler())
	defer proxy.Close()

	_, seedEdges := liveGraph(t)
	recs, versions := runFloodWithEstimators(t, proxy.URL, seedEdges, 16)
	verifyAgainstColdCatalogs(t, recs, versions)

	// The fan-out kept the whole fleet in lockstep: every node reports the
	// same final version and fingerprint.
	type state struct {
		Version     uint64
		Fingerprint string
	}
	var want state
	for i, u := range append([]string{proxy.URL}, urls...) {
		resp, err := http.Get(u + "/v1/graphs/live")
		if err != nil {
			t.Fatal(err)
		}
		var d state
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 {
			want = d
			continue
		}
		if d != want {
			t.Errorf("node %d diverged: %+v, proxy has %+v", i, d, want)
		}
	}
}
