// Package adjstream is a Go implementation of the cycle counting algorithms
// and lower-bound constructions of "The Complexity of Counting Cycles in the
// Adjacency List Streaming Model" (Kallaugher, McGregor, Price, Vorotnikova;
// PODS 2019).
//
// The package is the public facade over the implementation packages:
//
//   - the two-pass Õ(m/T^{2/3}) (1±ε) triangle estimator (Theorem 3.7),
//   - the two-pass Õ(m/T^{3/8}) O(1)-approximate 4-cycle estimator
//     (Theorem 4.6),
//   - the prior-work baselines of Table 1 (one-pass edge sampling, wedge
//     sampling, the naive two-pass estimator/distinguisher, the three-pass
//     exact-load variant, and the trivial exact counter), and
//   - the communication-game reductions of Section 5 (via internal/comm
//     and internal/lb, exercised by cmd/experiments and the benchmarks).
//
// # Quick start
//
//	g, _ := adjstream.ReadEdgeListFile("graph.txt")
//	s := adjstream.SortedStream(g)
//	res, err := adjstream.Estimate(s, adjstream.Options{
//		Algorithm:  adjstream.AlgoTwoPassTriangle,
//		SampleProb: 0.05,
//		Copies:     9,
//		Seed:       1,
//	})
//	fmt.Printf("≈%.0f triangles using %d words\n", res.Estimate, res.SpaceWords)
//
// All estimators consume streams in the adjacency list model: every edge
// appears once in each endpoint's list and lists are contiguous. Stream
// construction, validation, and file I/O are re-exported here.
package adjstream

import (
	"fmt"
	"io"
	"os"

	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// Re-exported fundamental types. These aliases make the public API
// self-contained while the implementation lives in internal packages.
type (
	// V is a vertex identifier.
	V = graph.V
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Graph is an immutable simple undirected graph with exact counters.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Stream is a validated adjacency-list stream.
	Stream = stream.Stream
	// Item is one stream element (owner, neighbor).
	Item = stream.Item
	// Estimator is a multi-pass streaming estimator.
	Estimator = stream.Estimator
	// DriverStats reports the stream-traversal counters of a parallel run
	// (stream items read, items delivered to copies, batches, peak queue
	// depth).
	DriverStats = stream.DriverStats
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// FromEdges builds a graph from an edge list, rejecting self-loops and
// duplicates.
func FromEdges(edges []Edge) (*Graph, error) { return graph.FromEdges(edges) }

// SortedStream returns the canonical deterministic stream of g (lists in
// ascending vertex order, sorted neighbors).
func SortedStream(g *Graph) *Stream { return stream.Sorted(g) }

// RandomStream returns a uniformly random adjacency-list ordering of g.
func RandomStream(g *Graph, seed uint64) *Stream { return stream.Random(g, seed) }

// ReadStream parses a text stream ("owner neighbor" per line) and validates
// the adjacency-list promise.
func ReadStream(r io.Reader) (*Stream, error) { return stream.ReadText(r) }

// WriteStream writes s in the text format accepted by ReadStream.
func WriteStream(w io.Writer, s *Stream) error { return stream.WriteText(w, s) }

// ReadEdgeList parses an undirected edge list ("u v" per line).
func ReadEdgeList(r io.Reader) (*Graph, error) { return stream.ReadEdgeList(r) }

// WriteEdgeList writes g as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return stream.WriteEdgeList(w, g) }

// ReadEdgeListFile reads an edge-list file from disk.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// ReadStreamFile reads a stream file from disk.
func ReadStreamFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	defer f.Close()
	return ReadStream(f)
}

// Driver selects how parallel median copies are executed over the stream.
type Driver string

// The available execution drivers for Parallel runs.
const (
	// DriverBroadcast reads the stream once per pass and fans items out to
	// all copies through batched channels (the default): O(passes · 2m)
	// stream-item reads regardless of the copy count.
	DriverBroadcast Driver = "broadcast"
	// DriverReplay replays the full stream once per copy per pass (the
	// pre-broadcast behavior, kept for A/B benchmarking):
	// O(copies · passes · 2m) stream-item reads.
	DriverReplay Driver = "replay"
)

// Algorithm selects an estimator.
type Algorithm string

// The available algorithms.
const (
	// AlgoTwoPassTriangle is the paper's main Õ(m/T^{2/3}) two-pass (1±ε)
	// triangle estimator (Theorem 3.7).
	AlgoTwoPassTriangle Algorithm = "twopass-triangle"
	// AlgoThreePassTriangle is the Section 2.1 three-pass exact-load
	// variant (Table 1 row 4 representative).
	AlgoThreePassTriangle Algorithm = "threepass-triangle"
	// AlgoNaiveTwoPass is the naive two-pass edge-sample estimator and
	// 0-vs-T distinguisher (Table 1 rows 3 and 5).
	AlgoNaiveTwoPass Algorithm = "naive-twopass"
	// AlgoOnePassTriangle is the Õ(m/√T)-style one-pass estimator
	// (Table 1 row 2).
	AlgoOnePassTriangle Algorithm = "onepass-triangle"
	// AlgoWedgeSampler is the one-pass wedge-sampling estimator, unbiased
	// under random list order (Table 1 row 1 representative).
	AlgoWedgeSampler Algorithm = "wedge-sampler"
	// AlgoTwoPassFourCycle is the paper's Õ(m/T^{3/8}) two-pass O(1)-approx
	// 4-cycle estimator (Theorem 4.6).
	AlgoTwoPassFourCycle Algorithm = "twopass-fourcycle"
	// AlgoAdaptiveTriangle is the two-pass triangle estimator with an
	// online-shrinking budget for when T is unknown; SampleSize is the
	// initial (maximum) budget.
	AlgoAdaptiveTriangle Algorithm = "adaptive-triangle"
	// AlgoExact is the trivial O(m) exact counter (any cycle length ≥ 3 via
	// CycleLen).
	AlgoExact Algorithm = "exact"
)

// Algorithms lists every selectable algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoTwoPassTriangle, AlgoThreePassTriangle, AlgoNaiveTwoPass,
		AlgoOnePassTriangle, AlgoWedgeSampler, AlgoTwoPassFourCycle,
		AlgoAdaptiveTriangle, AlgoExact,
	}
}

// Options configures an estimator.
type Options struct {
	// Algorithm selects the estimator; required.
	Algorithm Algorithm
	// SampleSize m′ selects bottom-k edge sampling (a uniform size-m′
	// sample). Exactly one of SampleSize / SampleProb must be set for the
	// sampling algorithms; both are ignored by AlgoExact.
	SampleSize int
	// SampleProb selects independent hash sampling with this probability.
	SampleProb float64
	// PairCap bounds the candidate pair/wedge reservoir where applicable
	// (0 = algorithm default).
	PairCap int
	// CycleLen is the cycle length for AlgoExact (default 3).
	CycleLen int
	// Copies > 1 runs that many independent copies in parallel and returns
	// the median — the paper's amplification to success probability 1-δ.
	// Mutually exclusive with Confidence.
	Copies int
	// Confidence, if set in (0,1), derives Copies from δ = 1-Confidence.
	Confidence float64
	// Parallel runs median copies concurrently (bounded by GOMAXPROCS).
	// Results are identical to the sequential run; only wall time changes.
	Parallel bool
	// Driver selects the parallel execution driver: DriverBroadcast
	// (default — one stream read per pass shared by all copies) or
	// DriverReplay (one stream read per copy per pass). Only meaningful
	// with Parallel and more than one copy.
	Driver Driver
	// Seed drives all randomness deterministically.
	Seed uint64
}

// Result reports an estimation run.
type Result struct {
	// Estimate is the (median) cycle count estimate.
	Estimate float64
	// SpaceWords is the peak state in machine words (summed over copies).
	SpaceWords int64
	// Passes is the number of passes taken over the stream.
	Passes int
	// M is the edge count observed in the first pass (0 for estimators
	// that do not track it).
	M int64
	// Copies is the number of independent copies actually run.
	Copies int
	// Driver is the execution driver that produced this result
	// (DriverBroadcast or DriverReplay for parallel runs, "" for
	// sequential ones).
	Driver Driver
	// DriverStats holds the stream-traversal counters of a parallel
	// broadcast run (zero value for replay and sequential runs).
	DriverStats DriverStats
}

func (o Options) copies() (int, error) {
	if o.Copies > 0 && o.Confidence > 0 {
		return 0, fmt.Errorf("adjstream: set at most one of Copies and Confidence")
	}
	if o.Confidence > 0 {
		if o.Confidence >= 1 {
			return 0, fmt.Errorf("adjstream: Confidence %v must be in (0,1)", o.Confidence)
		}
		return stats.CopiesForConfidence(1 - o.Confidence), nil
	}
	if o.Copies < 0 {
		return 0, fmt.Errorf("adjstream: negative Copies %d", o.Copies)
	}
	if o.Copies == 0 {
		return 1, nil
	}
	return o.Copies, nil
}

// newSingle builds one copy with the given seed.
func (o Options) newSingle(seed uint64) (Estimator, error) {
	tcfg := core.TriangleConfig{
		SampleSize: o.SampleSize,
		SampleProb: o.SampleProb,
		PairCap:    o.PairCap,
		Seed:       seed,
	}
	bcfg := baseline.Config{
		SampleSize: o.SampleSize,
		SampleProb: o.SampleProb,
		WedgeCap:   o.PairCap,
		Seed:       seed,
	}
	switch o.Algorithm {
	case AlgoTwoPassTriangle:
		return core.NewTwoPassTriangle(tcfg)
	case AlgoThreePassTriangle:
		return core.NewThreePassTriangle(tcfg)
	case AlgoNaiveTwoPass:
		return core.NewNaiveTwoPass(tcfg)
	case AlgoOnePassTriangle:
		return baseline.NewOnePassTriangle(bcfg)
	case AlgoWedgeSampler:
		return baseline.NewWedgeSampler(bcfg)
	case AlgoTwoPassFourCycle:
		return core.NewTwoPassFourCycle(core.FourCycleConfig{
			SampleSize: o.SampleSize,
			SampleProb: o.SampleProb,
			WedgeCap:   o.PairCap,
			Seed:       seed,
		})
	case AlgoAdaptiveTriangle:
		return core.NewAdaptiveTwoPassTriangle(core.AdaptiveConfig{
			InitialSample: o.SampleSize,
			PairCap:       o.PairCap,
			Seed:          seed,
		})
	case AlgoExact:
		l := o.CycleLen
		if l == 0 {
			l = 3
		}
		return baseline.NewExactStream(l)
	case "":
		return nil, fmt.Errorf("adjstream: Algorithm is required")
	default:
		return nil, fmt.Errorf("adjstream: unknown algorithm %q", o.Algorithm)
	}
}

// NewEstimator builds the configured estimator (with median amplification
// when Copies/Confidence ask for it). Drive it with RunStream or the
// internal stream driver.
func NewEstimator(opts Options) (Estimator, error) {
	c, err := opts.copies()
	if err != nil {
		return nil, err
	}
	if c == 1 {
		return opts.newSingle(opts.Seed)
	}
	copies := make([]Estimator, c)
	for i := range copies {
		e, err := opts.newSingle(opts.Seed + uint64(i)*0x9e37_79b9 + 1)
		if err != nil {
			return nil, err
		}
		copies[i] = e
	}
	return stream.NewMedian(copies...), nil
}

// RunStream drives e over s (all passes, identical order per pass).
func RunStream(s *Stream, e Estimator) { stream.Run(s, e) }

// Distinguish answers the paper's decision problem — does the stream's
// graph contain any cycles of the given length, or none? — using the
// sublinear distinguishers where they exist: the two-pass Θ(m/T^{2/3})
// triangle distinguisher (Table 1 row 5) for cycleLen 3, the two-pass
// Θ(m/T^{3/8}) estimator for cycleLen 4, and the exact O(m) counter for
// cycleLen ≥ 5 (where Theorem 5.5 rules out anything sublinear).
// sampleSize is the edge budget for the sublinear cases (0 defaults to
// m/4-level budgets via SampleProb 0.25).
func Distinguish(s *Stream, cycleLen int, sampleSize int, seed uint64) (found bool, res Result, err error) {
	var opts Options
	switch {
	case cycleLen == 3:
		opts = Options{Algorithm: AlgoNaiveTwoPass, SampleSize: sampleSize, Seed: seed}
	case cycleLen == 4:
		opts = Options{Algorithm: AlgoTwoPassFourCycle, SampleSize: sampleSize, Seed: seed}
	case cycleLen >= 5:
		opts = Options{Algorithm: AlgoExact, CycleLen: cycleLen, Seed: seed}
	default:
		return false, Result{}, fmt.Errorf("adjstream: cycle length %d < 3", cycleLen)
	}
	if sampleSize == 0 && cycleLen < 5 {
		opts.SampleSize = 0
		opts.SampleProb = 0.25
	}
	e, err := NewEstimator(opts)
	if err != nil {
		return false, Result{}, err
	}
	stream.Run(s, e)
	res = Result{
		Estimate:   e.Estimate(),
		SpaceWords: e.SpaceWords(),
		Passes:     e.Passes(),
		M:          s.M(),
		Copies:     1,
	}
	return res.Estimate > 0, res, nil
}

// LocalEstimate runs the two-pass semi-streaming local triangle estimator
// (per-vertex counts) at edge-sampling probability p and returns the local
// estimates together with run metadata. With p = 1 the counts are exact.
func LocalEstimate(s *Stream, p float64, seed uint64) (map[V]float64, Result, error) {
	alg, err := baseline.NewLocalTriangles(p, seed)
	if err != nil {
		return nil, Result{}, err
	}
	stream.Run(s, alg)
	res := Result{
		Estimate:   alg.Estimate(),
		SpaceWords: alg.SpaceWords(),
		Passes:     alg.Passes(),
		M:          s.M(),
		Copies:     1,
	}
	return alg.Counts(), res, nil
}

// Estimate builds the estimator for opts, runs it over s, and reports the
// result.
func Estimate(s *Stream, opts Options) (Result, error) {
	c, err := opts.copies()
	if err != nil {
		return Result{}, err
	}
	if opts.Parallel && c > 1 {
		copies := make([]Estimator, c)
		for i := range copies {
			e, err := opts.newSingle(opts.Seed + uint64(i)*0x9e37_79b9 + 1)
			if err != nil {
				return Result{}, err
			}
			copies[i] = e
		}
		var est float64
		var sp int64
		var st DriverStats
		driver := opts.Driver
		switch driver {
		case DriverReplay:
			est, sp = stream.MedianReplay(s, copies)
			st = stream.ReplayStats(s, copies)
		case DriverBroadcast, "":
			driver = DriverBroadcast
			est, sp, st = stream.MedianBroadcast(s, copies)
		default:
			return Result{}, fmt.Errorf("adjstream: unknown driver %q", opts.Driver)
		}
		return Result{
			Estimate:    est,
			SpaceWords:  sp,
			Passes:      copies[0].Passes(),
			M:           s.M(),
			Copies:      c,
			Driver:      driver,
			DriverStats: st,
		}, nil
	}
	e, err := NewEstimator(opts)
	if err != nil {
		return Result{}, err
	}
	stream.Run(s, e)
	return Result{
		Estimate:   e.Estimate(),
		SpaceWords: e.SpaceWords(),
		Passes:     e.Passes(),
		M:          s.M(),
		Copies:     c,
	}, nil
}
