// Package adjstream is a Go implementation of the cycle counting algorithms
// and lower-bound constructions of "The Complexity of Counting Cycles in the
// Adjacency List Streaming Model" (Kallaugher, McGregor, Price, Vorotnikova;
// PODS 2019).
//
// The package is the public facade over the implementation packages:
//
//   - the two-pass Õ(m/T^{2/3}) (1±ε) triangle estimator (Theorem 3.7),
//   - the two-pass Õ(m/T^{3/8}) O(1)-approximate 4-cycle estimator
//     (Theorem 4.6),
//   - the prior-work baselines of Table 1 (one-pass edge sampling, wedge
//     sampling, the naive two-pass estimator/distinguisher, the three-pass
//     exact-load variant, and the trivial exact counter), and
//   - the communication-game reductions of Section 5 (via internal/comm
//     and internal/lb, exercised by cmd/experiments and the benchmarks).
//
// # Quick start
//
//	g, _ := adjstream.ReadEdgeListFile("graph.txt")
//	s := adjstream.SortedStream(g)
//	res, err := adjstream.Estimate(s, adjstream.Options{
//		Algorithm:  adjstream.AlgoTwoPassTriangle,
//		SampleProb: 0.05,
//		Copies:     9,
//		Seed:       1,
//	})
//	fmt.Printf("≈%.0f triangles using %d words\n", res.Estimate, res.SpaceWords)
//
// All estimators consume streams in the adjacency list model: every edge
// appears once in each endpoint's list and lists are contiguous. Stream
// construction, validation, and file I/O are re-exported here.
package adjstream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"adjstream/internal/arbitrary"
	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// Re-exported fundamental types. These aliases make the public API
// self-contained while the implementation lives in internal packages.
type (
	// V is a vertex identifier.
	V = graph.V
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Graph is an immutable simple undirected graph with exact counters.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Delta stages edge additions/removals against an immutable Graph and
	// merges them copy-on-write into a new Graph (live ingestion).
	Delta = graph.Delta
	// Stream is a validated adjacency-list stream.
	Stream = stream.Stream
	// Item is one stream element (owner, neighbor).
	Item = stream.Item
	// Estimator is a multi-pass streaming estimator.
	Estimator = stream.Estimator
	// DriverStats reports the stream-traversal counters of a parallel run
	// (stream items read, items delivered to copies, batches, peak queue
	// depth).
	DriverStats = stream.DriverStats
	// ArbitraryStream is a validated arbitrary-order edge stream — the
	// model the paper contrasts with the adjacency-list promise: every edge
	// exactly once, adversarial order, no locality. Used with
	// Options.Model = ModelArbitrary.
	ArbitraryStream = arbitrary.Stream
	// ArbitraryEstimator is a multi-pass estimator over an ArbitraryStream.
	ArbitraryEstimator = arbitrary.Estimator
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// FromEdges builds a graph from an edge list, rejecting self-loops and
// duplicates.
func FromEdges(edges []Edge) (*Graph, error) { return graph.FromEdges(edges) }

// NewDelta returns an empty mutation buffer staged against base; Apply
// merges it into a new immutable Graph sharing untouched adjacency lists
// with base (copy-on-write).
func NewDelta(base *Graph) *Delta { return graph.NewDelta(base) }

// SortedStream returns the canonical deterministic stream of g (lists in
// ascending vertex order, sorted neighbors).
func SortedStream(g *Graph) *Stream { return stream.Sorted(g) }

// RandomStream returns a uniformly random adjacency-list ordering of g.
func RandomStream(g *Graph, seed uint64) *Stream { return stream.Random(g, seed) }

// ReadStream parses a text stream ("owner neighbor" per line) and validates
// the adjacency-list promise.
func ReadStream(r io.Reader) (*Stream, error) { return stream.ReadText(r) }

// WriteStream writes s in the text format accepted by ReadStream.
func WriteStream(w io.Writer, s *Stream) error { return stream.WriteText(w, s) }

// ReadEdgeList parses an undirected edge list ("u v" per line).
func ReadEdgeList(r io.Reader) (*Graph, error) { return stream.ReadEdgeList(r) }

// WriteEdgeList writes g as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return stream.WriteEdgeList(w, g) }

// ReadEdgeListFile reads an edge-list file from disk.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// ReadStreamFile reads a stream file from disk, sniffing the format by its
// 4-byte magic: "adjC" columnar, "adj1" compact binary, anything else text.
// The returned stream owns its memory; use OpenStreamFile to memory-map a
// columnar file instead of copying it.
func ReadStreamFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	defer f.Close()
	s, err := stream.ReadAny(f)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	return s, nil
}

// MappedStream is a Stream backed by a memory-mapped columnar file; see
// OpenMappedStream.
type MappedStream = stream.Mapped

// OpenMappedStream memory-maps a columnar ("adjC") stream file written by
// WriteStreamFile or genstream -format colstream. Replay touches the mapped
// pages directly — no parse cost, no heap copy of the columns. Close the
// returned stream when done.
func OpenMappedStream(path string) (*MappedStream, error) {
	return stream.OpenMapped(path)
}

// OpenStreamFile opens a stream file of any supported format, memory-mapping
// columnar files and reading the others. The returned closer must be called
// once the stream is no longer used; it is never nil.
func OpenStreamFile(path string) (*Stream, func() error, error) {
	return stream.OpenFile(path)
}

// WriteStreamFile writes s to path in the mmap-able columnar format read by
// OpenMappedStream.
func WriteStreamFile(path string, s *Stream) error {
	return stream.WriteFile(path, s)
}

// NewArbitraryStream derives an arbitrary-order edge stream from an
// adjacency-list stream: each edge is emitted once, at the position of its
// first occurrence in s. The derivation is deterministic, so the two models
// can be A/B-compared on the same input — Estimate with
// Options.Model = ModelArbitrary uses exactly this conversion.
func NewArbitraryStream(s *Stream) *ArbitraryStream {
	items := s.Items()
	seen := make(map[Edge]bool, s.M())
	edges := make([]Edge, 0, s.M())
	for _, it := range items {
		e := Edge{U: it.Owner, V: it.Nbr}.Norm()
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	as, err := arbitrary.FromEdges(edges)
	if err != nil {
		// A validated adjacency-list stream has no self-loops and each edge
		// exactly twice; first-occurrence filtering cannot produce duplicates.
		panic("adjstream: invalid edges from validated stream: " + err.Error())
	}
	return as
}

// ArbitraryStreamFromGraph returns g's edges in a uniformly random order
// under seed.
func ArbitraryStreamFromGraph(g *Graph, seed uint64) *ArbitraryStream {
	return arbitrary.FromGraph(g, seed)
}

// ArbitraryStreamFromEdges validates (no self-loops, no duplicates in either
// orientation) and copies an explicit edge sequence.
func ArbitraryStreamFromEdges(edges []Edge) (*ArbitraryStream, error) {
	s, err := arbitrary.FromEdges(edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return s, nil
}

// ReadArbitraryStream parses one "u v" edge per line (blank lines and
// #-comments skipped) — the format genstream -format arbstream emits — and
// returns the stream in file order.
func ReadArbitraryStream(r io.Reader) (*ArbitraryStream, error) {
	s, err := arbitrary.ReadEdges(r)
	if err != nil {
		return nil, fmt.Errorf("adjstream: %w", err)
	}
	return s, nil
}

// Driver selects how parallel median copies are executed over the stream.
type Driver string

// The available execution drivers for Parallel runs.
const (
	// DriverBroadcast shares one read of the stream per pass among all
	// copies (the default): O(passes · 2m) stream-item reads regardless of
	// the copy count. Copies pull the stream's immutable chunks directly —
	// no producer goroutine, no channel sends — in small windows that
	// interleave independent copies' work.
	DriverBroadcast Driver = "broadcast"
	// DriverPushBroadcast is the legacy push-based broadcast: a producer
	// goroutine fans batches out to per-copy channels. Same O(passes · 2m)
	// reads and bit-identical results; kept for A/B benchmarking against
	// DriverBroadcast's pull executor.
	DriverPushBroadcast Driver = "push-broadcast"
	// DriverReplay replays the full stream once per copy per pass (the
	// pre-broadcast behavior, kept for A/B benchmarking):
	// O(copies · passes · 2m) stream-item reads.
	DriverReplay Driver = "replay"
)

// Model selects the streaming model an estimator runs in. The paper's
// central question is what the adjacency-list promise buys over arbitrary
// edge order; exposing the model as an option lets the two columns of that
// comparison run through one API.
type Model string

// The available streaming models.
const (
	// ModelAdjacencyList is the paper's model (the default, also selected
	// by an empty Model): every edge appears once in each endpoint's list
	// and lists are contiguous.
	ModelAdjacencyList Model = "adjacency-list"
	// ModelArbitrary is the classic insertion-only model: every edge
	// exactly once, in adversarial order, no locality promise. Estimate
	// derives the edge order from the adjacency-list stream by first
	// occurrence; EstimateArbitrary accepts an explicit ArbitraryStream.
	ModelArbitrary Model = "arbitrary"
)

// Models lists every selectable streaming model.
func Models() []Model { return []Model{ModelAdjacencyList, ModelArbitrary} }

// Algorithm selects an estimator.
type Algorithm string

// The available algorithms.
const (
	// AlgoTwoPassTriangle is the paper's main Õ(m/T^{2/3}) two-pass (1±ε)
	// triangle estimator (Theorem 3.7).
	AlgoTwoPassTriangle Algorithm = "twopass-triangle"
	// AlgoThreePassTriangle is the Section 2.1 three-pass exact-load
	// variant (Table 1 row 4 representative).
	AlgoThreePassTriangle Algorithm = "threepass-triangle"
	// AlgoNaiveTwoPass is the naive two-pass edge-sample estimator and
	// 0-vs-T distinguisher (Table 1 rows 3 and 5).
	AlgoNaiveTwoPass Algorithm = "naive-twopass"
	// AlgoOnePassTriangle is the Õ(m/√T)-style one-pass estimator
	// (Table 1 row 2).
	AlgoOnePassTriangle Algorithm = "onepass-triangle"
	// AlgoWedgeSampler is the one-pass wedge-sampling estimator, unbiased
	// under random list order (Table 1 row 1 representative).
	AlgoWedgeSampler Algorithm = "wedge-sampler"
	// AlgoTwoPassFourCycle is the paper's Õ(m/T^{3/8}) two-pass O(1)-approx
	// 4-cycle estimator (Theorem 4.6).
	AlgoTwoPassFourCycle Algorithm = "twopass-fourcycle"
	// AlgoAdaptiveTriangle is the two-pass triangle estimator with an
	// online-shrinking budget for when T is unknown; SampleSize is the
	// initial (maximum) budget.
	AlgoAdaptiveTriangle Algorithm = "adaptive-triangle"
	// AlgoExact is the trivial O(m) exact counter (any cycle length ≥ 3 via
	// CycleLen).
	AlgoExact Algorithm = "exact"
)

// The arbitrary-order algorithms (Options.Model = ModelArbitrary).
const (
	// AlgoArbTwoPassWedge is the const-pass arbitrary-order triangle
	// estimator behind the Θ(m^{3/2}/T) bound: sample edges at SampleProb,
	// form wedges in the sample, close them exactly in pass two.
	AlgoArbTwoPassWedge Algorithm = "arb-twopass-wedge"
	// AlgoArbBuriol is the classic one-pass Buriol et al. triangle sampler:
	// SampleSize independent (edge, third-vertex) instances.
	AlgoArbBuriol Algorithm = "arb-buriol"
	// AlgoArbThreePassFourCycle is Vorotnikova's improved three-pass
	// 4-cycle estimator (arXiv 2007.13466): wedges sampled at SampleProb²,
	// exact co-degrees via the pair-closure passes.
	AlgoArbThreePassFourCycle Algorithm = "arb-threepass-fourcycle"
	// AlgoArbNearOptFourCycle is the Lüderssen–Neumann–Peng near-optimal
	// (1±ε) three-pass 4-cycle estimator (arXiv 2604.00828): an estimation
	// sample at SampleProb plus a √SampleProb discovery sample, combined
	// with exact inclusion probabilities.
	AlgoArbNearOptFourCycle Algorithm = "arb-nearopt-fourcycle"
)

// Algorithms lists every selectable adjacency-list algorithm. It predates
// the model axis and keeps its original roster for compatibility; use
// AlgorithmsForModel for the per-model listing.
func Algorithms() []Algorithm {
	return AlgorithmsForModel(ModelAdjacencyList)
}

// AlgorithmsForModel lists the algorithms selectable under the given model
// (nil for an unknown model).
func AlgorithmsForModel(m Model) []Algorithm {
	switch m {
	case "", ModelAdjacencyList:
		return []Algorithm{
			AlgoTwoPassTriangle, AlgoThreePassTriangle, AlgoNaiveTwoPass,
			AlgoOnePassTriangle, AlgoWedgeSampler, AlgoTwoPassFourCycle,
			AlgoAdaptiveTriangle, AlgoExact,
		}
	case ModelArbitrary:
		return []Algorithm{
			AlgoArbTwoPassWedge, AlgoArbBuriol,
			AlgoArbThreePassFourCycle, AlgoArbNearOptFourCycle,
		}
	default:
		return nil
	}
}

// Options configures an estimator.
type Options struct {
	// Algorithm selects the estimator; required.
	Algorithm Algorithm
	// Model selects the streaming model: ModelAdjacencyList (the default,
	// also selected by an empty Model) or ModelArbitrary. The algorithm
	// must belong to the selected model (see AlgorithmsForModel), and
	// Driver must be empty for arbitrary runs — the parallel drivers
	// traverse adjacency-list streams; arbitrary copies replay the edge
	// sequence independently.
	Model Model
	// SampleSize m′ selects bottom-k edge sampling (a uniform size-m′
	// sample). Exactly one of SampleSize / SampleProb must be set for the
	// sampling algorithms; both are ignored by AlgoExact.
	SampleSize int
	// SampleProb selects independent hash sampling with this probability.
	SampleProb float64
	// PairCap bounds the candidate pair/wedge reservoir where applicable
	// (0 = algorithm default).
	PairCap int
	// CycleLen is the cycle length for AlgoExact (default 3).
	CycleLen int
	// Copies > 1 runs that many independent copies in parallel and returns
	// the median — the paper's amplification to success probability 1-δ.
	// Mutually exclusive with Confidence.
	Copies int
	// Confidence, if set in (0,1), derives Copies from δ = 1-Confidence.
	Confidence float64
	// Parallel runs median copies concurrently (bounded by GOMAXPROCS).
	// Results are identical to the sequential run; only wall time changes.
	Parallel bool
	// Driver selects the parallel execution driver: DriverBroadcast
	// (default — one stream read per pass shared by all copies) or
	// DriverReplay (one stream read per copy per pass). Only meaningful
	// with Parallel and more than one copy.
	Driver Driver
	// Seed drives all randomness deterministically.
	Seed uint64
}

// Result reports an estimation run.
type Result struct {
	// Estimate is the (median) cycle count estimate.
	Estimate float64
	// SpaceWords is the peak state in machine words (summed over copies).
	SpaceWords int64
	// Passes is the number of passes taken over the stream.
	Passes int
	// M is the edge count observed in the first pass (0 for estimators
	// that do not track it).
	M int64
	// Copies is the number of independent copies actually run.
	Copies int
	// Driver is the execution driver that produced this result
	// (DriverBroadcast or DriverReplay for parallel runs, "" for
	// sequential ones).
	Driver Driver
	// DriverStats holds the stream-traversal counters of a parallel
	// broadcast run (zero value for replay and sequential runs).
	DriverStats DriverStats
}

// copies resolves the copy count of validated options (call Validate first:
// Copies/Confidence conflicts and ranges are checked there).
func (o Options) copies() int {
	if o.Confidence > 0 {
		return stats.CopiesForConfidence(1 - o.Confidence)
	}
	if o.Copies == 0 {
		return 1
	}
	return o.Copies
}

// newSingle builds one copy with the given seed.
func (o Options) newSingle(seed uint64) (Estimator, error) {
	tcfg := core.TriangleConfig{
		SampleSize: o.SampleSize,
		SampleProb: o.SampleProb,
		PairCap:    o.PairCap,
		Seed:       seed,
	}
	bcfg := baseline.Config{
		SampleSize: o.SampleSize,
		SampleProb: o.SampleProb,
		WedgeCap:   o.PairCap,
		Seed:       seed,
	}
	switch o.Algorithm {
	case AlgoTwoPassTriangle:
		return core.NewTwoPassTriangle(tcfg)
	case AlgoThreePassTriangle:
		return core.NewThreePassTriangle(tcfg)
	case AlgoNaiveTwoPass:
		return core.NewNaiveTwoPass(tcfg)
	case AlgoOnePassTriangle:
		return baseline.NewOnePassTriangle(bcfg)
	case AlgoWedgeSampler:
		return baseline.NewWedgeSampler(bcfg)
	case AlgoTwoPassFourCycle:
		return core.NewTwoPassFourCycle(core.FourCycleConfig{
			SampleSize: o.SampleSize,
			SampleProb: o.SampleProb,
			WedgeCap:   o.PairCap,
			Seed:       seed,
		})
	case AlgoAdaptiveTriangle:
		return core.NewAdaptiveTwoPassTriangle(core.AdaptiveConfig{
			InitialSample: o.SampleSize,
			PairCap:       o.PairCap,
			Seed:          seed,
		})
	case AlgoExact:
		l := o.CycleLen
		if l == 0 {
			l = 3
		}
		return baseline.NewExactStream(l)
	case "":
		return nil, fmt.Errorf("%w: Algorithm is required", ErrInvalidOptions)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownAlgorithm, o.Algorithm)
	}
}

// wrapSingle invokes newSingle and folds constructor rejections (budget
// rules the estimators enforce themselves) into ErrInvalidOptions.
func (o Options) wrapSingle(seed uint64) (Estimator, error) {
	e, err := o.newSingle(seed)
	if err != nil {
		if errors.Is(err, ErrInvalidOptions) || errors.Is(err, ErrUnknownAlgorithm) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return e, nil
}

// buildCopies constructs c independent copies with the deterministic
// per-copy seed schedule (copy i gets Seed + i·0x9e37_79b9 + 1).
func (o Options) buildCopies(c int) ([]Estimator, error) {
	copies := make([]Estimator, c)
	for i := range copies {
		e, err := o.wrapSingle(o.Seed + uint64(i)*0x9e37_79b9 + 1)
		if err != nil {
			return nil, err
		}
		copies[i] = e
	}
	return copies, nil
}

// newArbitrary builds one arbitrary-order copy with the given seed. n is the
// stream's vertex-universe size (the Buriol line needs it up front).
func (o Options) newArbitrary(seed uint64, n int64) (arbitrary.Estimator, error) {
	var (
		e   arbitrary.Estimator
		err error
	)
	switch o.Algorithm {
	case AlgoArbBuriol:
		if o.SampleProb != 0 {
			return nil, fmt.Errorf("%w: %q takes SampleSize (instance count), not SampleProb", ErrInvalidOptions, o.Algorithm)
		}
		e, err = arbitrary.NewBuriolSampler(o.SampleSize, n, seed)
	case AlgoArbTwoPassWedge, AlgoArbThreePassFourCycle, AlgoArbNearOptFourCycle:
		if o.SampleSize != 0 {
			return nil, fmt.Errorf("%w: %q takes SampleProb, not SampleSize", ErrInvalidOptions, o.Algorithm)
		}
		switch o.Algorithm {
		case AlgoArbTwoPassWedge:
			e, err = arbitrary.NewTwoPassWedge(o.SampleProb, seed)
		case AlgoArbThreePassFourCycle:
			e, err = arbitrary.NewThreePassFourCycle(o.SampleProb, seed)
		default:
			e, err = arbitrary.NewNearOptFourCycle(o.SampleProb, 0, seed)
		}
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownAlgorithm, o.Algorithm)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return e, nil
}

// NewEstimator builds the configured estimator (with median amplification
// when Copies/Confidence ask for it). Drive it with RunStream or the
// internal stream driver. Errors wrap ErrUnknownAlgorithm or
// ErrInvalidOptions. Arbitrary-order estimators are not stream.Estimators —
// for Model = ModelArbitrary use Estimate/EstimateArbitrary, which drive the
// copies themselves.
func NewEstimator(opts Options) (Estimator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Model == ModelArbitrary {
		return nil, fmt.Errorf("%w: Model %q estimators run over edge streams, not adjacency-list streams; use Estimate or EstimateArbitrary", ErrInvalidOptions, opts.Model)
	}
	c := opts.copies()
	if c == 1 {
		return opts.wrapSingle(opts.Seed)
	}
	copies, err := opts.buildCopies(c)
	if err != nil {
		return nil, err
	}
	return stream.NewMedian(copies...), nil
}

// RunStream drives e over s (all passes, identical order per pass).
func RunStream(s *Stream, e Estimator) { stream.Run(s, e) }

// RunStreamContext is RunStream with cooperative cancellation: the pass loop
// polls ctx at block boundaries and, once ctx fires, abandons the run and
// returns an error wrapping ErrCanceled (and the context's own error). e's
// state is unspecified after a cancelled run. With a context that never
// fires, the delivered callback sequence is exactly that of RunStream.
func RunStreamContext(ctx context.Context, s *Stream, e Estimator) error {
	if err := stream.RunContext(ctx, s, e); err != nil {
		return canceled(err)
	}
	return nil
}

// Distinguish answers the paper's decision problem — does the stream's
// graph contain any cycles of the given length, or none? — with a single
// sequential copy. sampleSize is the edge budget for the sublinear cases
// (0 defaults to m/4-level budgets via SampleProb 0.25). It is the
// backward-compatible wrapper over DistinguishContext, which additionally
// honors Copies, Confidence, Parallel, and Driver.
func Distinguish(s *Stream, cycleLen int, sampleSize int, seed uint64) (found bool, res Result, err error) {
	return DistinguishContext(context.Background(), s, cycleLen, Options{SampleSize: sampleSize, Seed: seed})
}

// DistinguishContext answers the decision problem under ctx using the
// sublinear distinguishers where they exist: the two-pass Θ(m/T^{2/3})
// triangle distinguisher (Table 1 row 5) for cycleLen 3, the two-pass
// Θ(m/T^{3/8}) estimator for cycleLen 4, and the exact O(m) counter for
// cycleLen ≥ 5 (where Theorem 5.5 rules out anything sublinear).
//
// The algorithm (and, for cycleLen ≥ 5, the cycle length) is derived from
// cycleLen, so opts.Algorithm and opts.CycleLen must be zero. Every other
// option behaves exactly as in EstimateContext — in particular Copies,
// Confidence, Parallel, and Driver run the distinguisher through the same
// copies/driver path as Estimate, amplifying the decision by median. When
// neither SampleSize nor SampleProb is set for the sublinear cases, the
// budget defaults to SampleProb 0.25. Cancellation surfaces as ErrCanceled.
func DistinguishContext(ctx context.Context, s *Stream, cycleLen int, opts Options) (found bool, res Result, err error) {
	if cycleLen < 3 {
		return false, Result{}, fmt.Errorf("%w: cycle length %d < 3", ErrInvalidOptions, cycleLen)
	}
	if opts.Algorithm != "" {
		return false, Result{}, fmt.Errorf("%w: Distinguish derives Algorithm from cycleLen; leave it empty", ErrInvalidOptions)
	}
	if opts.CycleLen != 0 {
		return false, Result{}, fmt.Errorf("%w: Distinguish derives CycleLen from cycleLen; leave it zero", ErrInvalidOptions)
	}
	switch {
	case cycleLen == 3:
		opts.Algorithm = AlgoNaiveTwoPass
	case cycleLen == 4:
		opts.Algorithm = AlgoTwoPassFourCycle
	default:
		opts.Algorithm = AlgoExact
		opts.CycleLen = cycleLen
		opts.SampleSize, opts.SampleProb = 0, 0
	}
	if cycleLen < 5 && opts.SampleSize == 0 && opts.SampleProb == 0 {
		opts.SampleProb = 0.25
	}
	res, err = EstimateContext(ctx, s, opts)
	if err != nil {
		return false, Result{}, err
	}
	return res.Estimate > 0, res, nil
}

// LocalEstimate runs the two-pass semi-streaming local triangle estimator
// (per-vertex counts) at edge-sampling probability p with one sequential
// copy and returns the local estimates together with run metadata. With
// p = 1 the counts are exact. It is the backward-compatible wrapper over
// LocalEstimateContext, which additionally honors Copies, Confidence,
// Parallel, and Driver.
func LocalEstimate(s *Stream, p float64, seed uint64) (map[V]float64, Result, error) {
	return LocalEstimateContext(context.Background(), s, p, Options{Seed: seed})
}

// LocalEstimateContext runs the local triangle estimator under ctx through
// the same copies/driver path as EstimateContext: Copies/Confidence select
// k independent copies (per-copy seeds on the standard schedule), Parallel
// and Driver choose how they traverse the stream, the returned map is the
// per-vertex median across copies (a vertex untouched by a copy counts as
// 0 there), Result.Estimate is the median of the copies' global estimates,
// and Result.SpaceWords their summed peaks. The algorithm is fixed, so
// opts.Algorithm must be empty, and the sampling probability is the p
// argument — opts.SampleSize/SampleProb/PairCap/CycleLen must be zero.
// Cancellation surfaces as ErrCanceled.
func LocalEstimateContext(ctx context.Context, s *Stream, p float64, opts Options) (map[V]float64, Result, error) {
	if opts.Algorithm != "" {
		return nil, Result{}, fmt.Errorf("%w: LocalEstimate has a fixed algorithm; leave Algorithm empty", ErrInvalidOptions)
	}
	if opts.SampleSize != 0 || opts.SampleProb != 0 || opts.PairCap != 0 || opts.CycleLen != 0 {
		return nil, Result{}, fmt.Errorf("%w: LocalEstimate takes its sampling probability as the p argument; leave the Options budget fields zero", ErrInvalidOptions)
	}
	chk := opts
	chk.Algorithm = AlgoExact // stand-in: validates driver/copies/ranges
	if err := chk.Validate(); err != nil {
		return nil, Result{}, err
	}
	c := opts.copies()
	copies := make([]*baseline.LocalTriangles, c)
	ests := make([]stream.Estimator, c)
	for i := range copies {
		seed := opts.Seed
		if c > 1 {
			seed = opts.Seed + uint64(i)*0x9e37_79b9 + 1
		}
		alg, err := baseline.NewLocalTriangles(p, seed)
		if err != nil {
			return nil, Result{}, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
		}
		copies[i], ests[i] = alg, alg
	}
	var st DriverStats
	var driver Driver
	if opts.Parallel && c > 1 {
		var err error
		switch opts.Driver {
		case DriverReplay:
			driver = DriverReplay
			if err = stream.RunParallelContext(ctx, s, ests); err == nil {
				st = stream.ReplayStats(s, ests)
			}
		case DriverPushBroadcast:
			driver = DriverPushBroadcast
			st, err = stream.RunBroadcastConfigContext(ctx, s, ests, stream.BroadcastConfig{Push: true})
		default: // DriverBroadcast or ""
			driver = DriverBroadcast
			st, err = stream.RunBroadcastContext(ctx, s, ests)
		}
		if err != nil {
			return nil, Result{}, canceled(err)
		}
	} else {
		for _, e := range ests {
			if err := stream.RunContext(ctx, s, e); err != nil {
				return nil, Result{}, canceled(err)
			}
		}
	}
	est, sp := stream.MedianOf(ests)
	res := Result{
		Estimate:    est,
		SpaceWords:  sp,
		Passes:      copies[0].Passes(),
		M:           s.M(),
		Copies:      c,
		Driver:      driver,
		DriverStats: st,
	}
	return localMedian(copies), res, nil
}

// localMedian combines per-copy local counts into the per-vertex median
// map. A single copy's map is returned as-is (shared; do not modify).
func localMedian(copies []*baseline.LocalTriangles) map[V]float64 {
	if len(copies) == 1 {
		return copies[0].Counts()
	}
	out := make(map[V]float64)
	vals := make([]float64, len(copies))
	for _, c := range copies {
		for v := range c.Counts() {
			if _, done := out[v]; done {
				continue
			}
			for i, cc := range copies {
				vals[i] = cc.Counts()[v] // 0 when the copy never touched v
			}
			out[v] = stats.Median(vals)
		}
	}
	return out
}

// Estimate builds the estimator for opts, runs it over s, and reports the
// result. It is the backward-compatible wrapper over EstimateContext with a
// context that never fires.
func Estimate(s *Stream, opts Options) (Result, error) {
	return EstimateContext(context.Background(), s, opts)
}

// EstimateContext builds the estimator for opts, runs it over s under ctx,
// and reports the result. When ctx fires — cancellation, deadline expiry,
// or client disconnect upstream — the pass loop stops at the next batch/
// block boundary, all driver goroutines exit, and the call returns an error
// wrapping ErrCanceled plus the context's own error. With a context that
// never fires, the result is bit-identical to Estimate's for every
// algorithm and driver. Option errors wrap ErrUnknownAlgorithm or
// ErrInvalidOptions.
//
// With Options.Model = ModelArbitrary the adjacency-list stream is first
// converted to an arbitrary-order edge stream (each edge at its first
// occurrence, see NewArbitraryStream) and the run proceeds as in
// EstimateArbitraryContext: same copies/median machinery and per-copy seed
// schedule, but no driver (Result.Driver is empty; Parallel runs the copies
// concurrently, each replaying the edge sequence).
func EstimateContext(ctx context.Context, s *Stream, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Model == ModelArbitrary {
		return EstimateArbitraryContext(ctx, NewArbitraryStream(s), opts)
	}
	c := opts.copies()
	if opts.Parallel && c > 1 {
		copies, err := opts.buildCopies(c)
		if err != nil {
			return Result{}, err
		}
		var est float64
		var sp int64
		var st DriverStats
		driver := opts.Driver
		switch driver {
		case DriverReplay:
			est, sp, err = stream.MedianReplayContext(ctx, s, copies)
			if err == nil {
				st = stream.ReplayStats(s, copies)
			}
		case DriverPushBroadcast:
			est, sp, st, err = stream.MedianBroadcastConfigContext(ctx, s, copies, stream.BroadcastConfig{Push: true})
		default: // DriverBroadcast or "" (Validate rejected everything else)
			driver = DriverBroadcast
			est, sp, st, err = stream.MedianBroadcastContext(ctx, s, copies)
		}
		if err != nil {
			return Result{}, canceled(err)
		}
		return Result{
			Estimate:    est,
			SpaceWords:  sp,
			Passes:      copies[0].Passes(),
			M:           s.M(),
			Copies:      c,
			Driver:      driver,
			DriverStats: st,
		}, nil
	}
	e, err := NewEstimator(opts)
	if err != nil {
		return Result{}, err
	}
	if err := stream.RunContext(ctx, s, e); err != nil {
		return Result{}, canceled(err)
	}
	return Result{
		Estimate:   e.Estimate(),
		SpaceWords: e.SpaceWords(),
		Passes:     e.Passes(),
		M:          s.M(),
		Copies:     c,
	}, nil
}

// EstimateArbitrary runs an arbitrary-order estimator over an explicit edge
// stream — the entry point when the input is a raw edge sequence rather
// than an adjacency-list stream (cyclecount -model arbitrary, arbstream
// files). It is the backward-compatible wrapper over
// EstimateArbitraryContext with a context that never fires.
func EstimateArbitrary(s *ArbitraryStream, opts Options) (Result, error) {
	return EstimateArbitraryContext(context.Background(), s, opts)
}

// EstimateArbitraryContext builds opts.copies() independent copies of the
// selected arbitrary-order estimator (per-copy seeds on the standard
// schedule), replays s through each under ctx, and reports the median.
// Options.Model may be left empty — it is taken as ModelArbitrary — but
// ModelAdjacencyList is rejected. Parallel runs the copies concurrently,
// each replaying the edge sequence independently; results are identical to
// the sequential run. Result.Driver is always empty: the parallel stream
// drivers are an adjacency-list facility. Cancellation surfaces as
// ErrCanceled; option errors wrap ErrUnknownAlgorithm or ErrInvalidOptions.
func EstimateArbitraryContext(ctx context.Context, s *ArbitraryStream, opts Options) (Result, error) {
	if opts.Model != "" && opts.Model != ModelArbitrary {
		return Result{}, fmt.Errorf("%w: EstimateArbitrary runs Model %q; got %q", ErrInvalidOptions, ModelArbitrary, opts.Model)
	}
	opts.Model = ModelArbitrary
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	c := opts.copies()
	copies := make([]arbitrary.Estimator, c)
	for i := range copies {
		seed := opts.Seed
		if c > 1 {
			seed = opts.Seed + uint64(i)*0x9e37_79b9 + 1
		}
		e, err := opts.newArbitrary(seed, s.N())
		if err != nil {
			return Result{}, err
		}
		copies[i] = e
	}
	if opts.Parallel && c > 1 {
		errs := make([]error, c)
		var wg sync.WaitGroup
		for i, e := range copies {
			wg.Add(1)
			go func(i int, e arbitrary.Estimator) {
				defer wg.Done()
				errs[i] = arbitrary.RunContext(ctx, s, e)
			}(i, e)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Result{}, canceled(err)
			}
		}
	} else {
		for _, e := range copies {
			if err := arbitrary.RunContext(ctx, s, e); err != nil {
				return Result{}, canceled(err)
			}
		}
	}
	ests := make([]float64, c)
	var sp int64
	for i, e := range copies {
		ests[i] = e.Estimate()
		sp += e.SpaceWords()
	}
	return Result{
		Estimate:   stats.Median(ests),
		SpaceWords: sp,
		Passes:     copies[0].Passes(),
		M:          s.M(),
		Copies:     c,
	}, nil
}
