package adjstream_test

// Cluster equivalence: for every algorithm, the answer produced by a proxy
// fanning copy-range shards out to a fleet must be byte-identical (modulo
// elapsed_ms) to the single-node answer — under 1- and 3-replica
// topologies, and under injected faults: a replica dying mid-shard must be
// absorbed by a retry, and a total fleet outage by the local fallback.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adjstream"
	"adjstream/internal/cluster"
	"adjstream/internal/gen"
	"adjstream/internal/serve"
)

// newCatalog builds the shared test catalog; every node must hold the
// identical graphs for shard results to merge.
func newCatalog(t *testing.T) *serve.Catalog {
	t.Helper()
	g, err := gen.ErdosRenyi(120, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cat := serve.NewCatalog()
	for name, graph := range map[string]*adjstream.Graph{
		"er120": g,
		"tri48": gen.DisjointTriangles(48),
		"c4x48": gen.DisjointFourCycles(48),
	} {
		if _, err := cat.Add(name, graph); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// newProxy wires a fleet of n replicas behind a proxy server and returns
// the proxy's test server plus the replica servers (for fault injection).
func newProxy(t *testing.T, n int, cfg serve.Config, clusterCfg cluster.Config) (*httptest.Server, []*httptest.Server) {
	t.Helper()
	reps := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
		t.Cleanup(reps[i].Close)
		urls[i] = reps[i].URL
	}
	clusterCfg.Replicas = urls
	if clusterCfg.ProbeInterval == 0 {
		clusterCfg.ProbeInterval = -1 // tests control health through requests
	}
	if clusterCfg.BackoffBase == 0 {
		clusterCfg.BackoffBase = time.Millisecond
	}
	sched, err := cluster.New(clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	cfg.Remote = sched.Run
	proxy := httptest.NewServer(serve.New(newCatalog(t), cfg).Handler())
	t.Cleanup(proxy.Close)
	return proxy, reps
}

// ask POSTs body to url+path and returns the status and the canonical
// response JSON with elapsed_ms removed.
func ask(t *testing.T, url, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// estimateBody builds the request body exercising algo across 7 copies.
func estimateBody(algo adjstream.Algorithm) string {
	req := map[string]any{
		"graph":     "er120",
		"algorithm": string(algo),
		"copies":    7,
		"parallel":  true,
		"seed":      11,
	}
	if algo != adjstream.AlgoExact {
		req["sample_size"] = 64
		req["pair_cap"] = 512
	}
	b, _ := json.Marshal(req)
	return string(b)
}

func TestClusterByteIdenticalAllAlgorithms(t *testing.T) {
	single := httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
	defer single.Close()
	for _, n := range []int{1, 3} {
		proxy, _ := newProxy(t, n, serve.Config{CacheEntries: -1}, cluster.Config{})
		for _, algo := range adjstream.Algorithms() {
			t.Run(fmt.Sprintf("%d-replica/%s", n, algo), func(t *testing.T) {
				body := estimateBody(algo)
				wantStatus, want := ask(t, single.URL, "/v1/estimate", body)
				gotStatus, got := ask(t, proxy.URL, "/v1/estimate", body)
				if gotStatus != wantStatus || got != want {
					t.Errorf("proxied (%d): %s\nsingle (%d): %s", gotStatus, got, wantStatus, want)
				}
			})
		}
	}
}

func TestClusterByteIdenticalDistinguish(t *testing.T) {
	single := httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
	defer single.Close()
	proxy, _ := newProxy(t, 3, serve.Config{CacheEntries: -1}, cluster.Config{})
	for _, tc := range []struct {
		graph    string
		cycleLen int
	}{
		{"tri48", 3}, {"c4x48", 3}, {"c4x48", 4}, {"tri48", 4}, {"er120", 5},
	} {
		body := fmt.Sprintf(`{"graph":%q,"cycle_len":%d,"copies":3,"seed":7}`, tc.graph, tc.cycleLen)
		wantStatus, want := ask(t, single.URL, "/v1/distinguish", body)
		gotStatus, got := ask(t, proxy.URL, "/v1/distinguish", body)
		if gotStatus != wantStatus || got != want {
			t.Errorf("%s C%d: proxied (%d) %s != single (%d) %s",
				tc.graph, tc.cycleLen, gotStatus, got, wantStatus, want)
		}
	}
}

// TestClusterRetriesDeadReplica kills one replica's connection mid-shard
// (once); the scheduler must absorb it with a retry and still answer
// byte-identically.
func TestClusterRetriesDeadReplica(t *testing.T) {
	single := httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
	defer single.Close()

	var killed atomic.Bool
	cat := newCatalog(t)
	inner := serve.New(cat, serve.Config{}).Handler()
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" && killed.CompareAndSwap(false, true) {
			panic(http.ErrAbortHandler) // drop the connection mid-request
		}
		inner.ServeHTTP(w, r)
	}))
	defer dying.Close()

	healthy := make([]*httptest.Server, 2)
	urls := []string{dying.URL}
	for i := range healthy {
		healthy[i] = httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
		defer healthy[i].Close()
		urls = append(urls, healthy[i].URL)
	}
	sched, err := cluster.New(cluster.Config{
		Replicas: urls, ProbeInterval: -1, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	proxy := httptest.NewServer(serve.New(newCatalog(t), serve.Config{CacheEntries: -1, Remote: sched.Run}).Handler())
	defer proxy.Close()

	// Issue requests until the dying replica has taken its hit (placement
	// is hash-driven, so sweep a few seeds to be sure a shard lands on it).
	for seed := 0; seed < 8 && !killed.Load(); seed++ {
		body := fmt.Sprintf(`{"graph":"er120","algorithm":"twopass-triangle","sample_size":64,"copies":7,"parallel":true,"seed":%d}`, seed)
		wantStatus, want := ask(t, single.URL, "/v1/estimate", body)
		gotStatus, got := ask(t, proxy.URL, "/v1/estimate", body)
		if gotStatus != wantStatus || got != want {
			t.Fatalf("seed %d: proxied (%d) %s != single (%d) %s", seed, gotStatus, got, wantStatus, want)
		}
	}
	if !killed.Load() {
		t.Fatal("no shard ever reached the dying replica; broaden the sweep")
	}
}

// TestClusterLocalFallback takes the whole fleet down: with fallback the
// proxy answers identically from its local pool; with -no-fallback
// semantics it reports 503.
func TestClusterLocalFallback(t *testing.T) {
	single := httptest.NewServer(serve.New(newCatalog(t), serve.Config{}).Handler())
	defer single.Close()
	body := estimateBody(adjstream.AlgoThreePassTriangle)

	proxy, reps := newProxy(t, 3, serve.Config{CacheEntries: -1}, cluster.Config{Attempts: 2})
	strict, strictReps := newProxy(t, 3, serve.Config{CacheEntries: -1, NoLocalFallback: true}, cluster.Config{Attempts: 2})
	for _, r := range append(reps, strictReps...) {
		r.Close()
	}

	wantStatus, want := ask(t, single.URL, "/v1/estimate", body)
	gotStatus, got := ask(t, proxy.URL, "/v1/estimate", body)
	if gotStatus != wantStatus || got != want {
		t.Errorf("fallback: proxied (%d) %s != single (%d) %s", gotStatus, got, wantStatus, want)
	}
	status, errBody := ask(t, strict.URL, "/v1/estimate", body)
	if status != http.StatusServiceUnavailable {
		t.Errorf("no-fallback outage: status %d (%s), want 503", status, errBody)
	}
	// The failure wears the uniform error envelope.
	var er struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(errBody), &er); err != nil {
		t.Fatalf("decode error envelope %q: %v", errBody, err)
	}
	if er.Error.Code != "remote_unavailable" || er.Error.Message == "" {
		t.Errorf("error envelope = %+v, want code remote_unavailable with a message", er.Error)
	}
}
