package adjstream_test

import (
	"fmt"
	"log"

	"adjstream"
)

// Estimate triangles in a small graph with the paper's two-pass algorithm.
func ExampleEstimate() {
	g, err := adjstream.FromEdges([]adjstream.Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}, // triangle
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}, // triangle
	})
	if err != nil {
		log.Fatal(err)
	}
	s := adjstream.SortedStream(g)
	res, err := adjstream.Estimate(s, adjstream.Options{
		Algorithm:  adjstream.AlgoTwoPassTriangle,
		SampleProb: 1, // full sample: the estimate is exact
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %.0f (passes: %d)\n", res.Estimate, res.Passes)
	// Output: triangles: 2 (passes: 2)
}

// Count 4-cycles with the Theorem 4.6 estimator.
func ExampleEstimate_fourCycles() {
	g, err := adjstream.FromEdges([]adjstream.Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := adjstream.Estimate(adjstream.SortedStream(g), adjstream.Options{
		Algorithm:  adjstream.AlgoTwoPassFourCycle,
		SampleProb: 1,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cycles: %.0f\n", res.Estimate)
	// Output: 4-cycles: 1
}

// Exact counting of longer cycles, for which the paper proves no sublinear
// streaming algorithm can exist (Theorem 5.5).
func ExampleEstimate_exactLongCycles() {
	g, err := adjstream.FromEdges([]adjstream.Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := adjstream.Estimate(adjstream.SortedStream(g), adjstream.Options{
		Algorithm: adjstream.AlgoExact,
		CycleLen:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-cycles: %.0f (space: %d words = 2m)\n", res.Estimate, res.SpaceWords)
	// Output: 5-cycles: 1 (space: 10 words = 2m)
}

// Per-vertex (local) triangle counts.
func ExampleLocalEstimate() {
	// Two triangles sharing vertex 0.
	g, err := adjstream.FromEdges([]adjstream.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 0, V: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	counts, _, err := adjstream.LocalEstimate(adjstream.SortedStream(g), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles through vertex 0: %.0f\n", counts[0])
	// Output: triangles through vertex 0: 2
}
