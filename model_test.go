package adjstream

import (
	"context"
	"errors"
	"strings"
	"testing"

	"adjstream/internal/gen"
)

func TestModelValidation(t *testing.T) {
	g := gen.Complete(6)
	s := SortedStream(g)
	cases := []struct {
		name string
		opts Options
	}{
		{"unknown model", Options{Algorithm: AlgoExact, Model: "edge-list"}},
		{"arb algorithm under AL model", Options{Algorithm: AlgoArbTwoPassWedge, SampleProb: 0.5}},
		{"arb algorithm under explicit AL model", Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelAdjacencyList, SampleProb: 0.5}},
		{"AL algorithm under arbitrary model", Options{Algorithm: AlgoTwoPassTriangle, Model: ModelArbitrary, SampleProb: 0.5}},
		{"driver under arbitrary model", Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelArbitrary, SampleProb: 0.5, Driver: DriverBroadcast}},
		{"buriol with SampleProb", Options{Algorithm: AlgoArbBuriol, Model: ModelArbitrary, SampleProb: 0.5}},
		{"wedge with SampleSize", Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelArbitrary, SampleSize: 10}},
		{"bad rate", Options{Algorithm: AlgoArbThreePassFourCycle, Model: ModelArbitrary, SampleProb: 0}},
	}
	for _, c := range cases {
		if _, err := Estimate(s, c.opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: err = %v, want ErrInvalidOptions", c.name, err)
		}
	}
	if _, err := Estimate(s, Options{Algorithm: Algorithm("arb-nope"), Model: ModelArbitrary}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown arb algorithm: err = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := NewEstimator(Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelArbitrary, SampleProb: 0.5}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("NewEstimator on arbitrary model: err = %v, want ErrInvalidOptions", err)
	}
}

func TestAlgorithmsForModel(t *testing.T) {
	al := AlgorithmsForModel(ModelAdjacencyList)
	if len(al) != len(Algorithms()) {
		t.Fatalf("AL roster %d != Algorithms() %d", len(al), len(Algorithms()))
	}
	arb := AlgorithmsForModel(ModelArbitrary)
	if len(arb) != 4 {
		t.Fatalf("arbitrary roster = %v", arb)
	}
	for _, a := range arb {
		if !strings.HasPrefix(string(a), "arb-") {
			t.Errorf("arbitrary algorithm %q lacks arb- prefix", a)
		}
		if _, err := Estimate(SortedStream(gen.Complete(5)), Options{Algorithm: a, Model: ModelAdjacencyList, SampleProb: 0.5}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%q accepted under AL model", a)
		}
	}
	if AlgorithmsForModel("nope") != nil {
		t.Error("unknown model should list nil")
	}
	if len(Models()) != 2 {
		t.Errorf("Models() = %v", Models())
	}
}

// At p = 1 the arbitrary-order estimators collapse to the exact counts —
// through the facade, from an adjacency-list stream, via the
// first-occurrence model conversion.
func TestEstimateArbitraryExact(t *testing.T) {
	g := gen.Complete(8) // T = 56, C4 = 105
	s := SortedStream(g)
	cases := []struct {
		opts Options
		want float64
	}{
		{Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelArbitrary, SampleProb: 1, Seed: 1}, float64(g.Triangles())},
		{Options{Algorithm: AlgoArbThreePassFourCycle, Model: ModelArbitrary, SampleProb: 1, Seed: 1}, float64(g.FourCycles())},
		{Options{Algorithm: AlgoArbNearOptFourCycle, Model: ModelArbitrary, SampleProb: 1, Seed: 1}, float64(g.FourCycles())},
	}
	for _, c := range cases {
		res, err := Estimate(s, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.opts.Algorithm, err)
		}
		if res.Estimate != c.want {
			t.Errorf("%s: estimate = %v, want %v", c.opts.Algorithm, res.Estimate, c.want)
		}
		if res.M != g.M() {
			t.Errorf("%s: M = %d, want %d", c.opts.Algorithm, res.M, g.M())
		}
		if res.Driver != "" {
			t.Errorf("%s: Driver = %q, want empty", c.opts.Algorithm, res.Driver)
		}
		if res.SpaceWords <= 0 {
			t.Errorf("%s: space = %d", c.opts.Algorithm, res.SpaceWords)
		}
	}
}

// The derived arbitrary stream is the first occurrence of each edge: for a
// sorted stream that is ascending (u,v) order, and M/N match the graph.
func TestNewArbitraryStreamFirstOccurrence(t *testing.T) {
	g := gen.Complete(5)
	as := NewArbitraryStream(SortedStream(g))
	if as.M() != g.M() {
		t.Fatalf("M = %d, want %d", as.M(), g.M())
	}
	if as.N() != int64(g.N()) {
		t.Fatalf("N = %d, want %d", as.N(), g.N())
	}
	edges := as.Edges()
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("sorted-stream derivation out of order at %d: %v then %v", i-1, a, b)
		}
	}
}

// Same options, same stream: byte-identical results across calls, and
// Parallel must change nothing but wall time — including under multi-copy
// median amplification.
func TestEstimateArbitraryDeterministicAndParallel(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := SortedStream(g)
	for _, algo := range []Algorithm{AlgoArbTwoPassWedge, AlgoArbThreePassFourCycle, AlgoArbNearOptFourCycle} {
		opts := Options{Algorithm: algo, Model: ModelArbitrary, SampleProb: 0.4, Copies: 5, Seed: 3}
		seq1, err := Estimate(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		seq2, err := Estimate(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		par := opts
		par.Parallel = true
		pres, err := Estimate(s, par)
		if err != nil {
			t.Fatal(err)
		}
		if seq1 != seq2 {
			t.Errorf("%s: non-deterministic: %+v vs %+v", algo, seq1, seq2)
		}
		if pres != seq1 {
			t.Errorf("%s: parallel %+v != sequential %+v", algo, pres, seq1)
		}
		if seq1.Copies != 5 || seq1.Passes == 0 {
			t.Errorf("%s: result metadata %+v", algo, seq1)
		}
	}
}

// Facade equivalence: Estimate over the AL stream with Model arbitrary must
// equal EstimateArbitrary over the explicitly derived stream, and the
// single-copy run must use Seed itself (the multi-copy schedule only kicks
// in for copies > 1).
func TestEstimateArbitraryMatchesDirect(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := SortedStream(g)
	opts := Options{Algorithm: AlgoArbThreePassFourCycle, Model: ModelArbitrary, SampleProb: 0.5, Seed: 9}
	viaModel, err := Estimate(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EstimateArbitrary(NewArbitraryStream(s), opts)
	if err != nil {
		t.Fatal(err)
	}
	if viaModel != direct {
		t.Fatalf("model route %+v != direct route %+v", viaModel, direct)
	}
	// Model may be left empty on the direct route…
	noModel := opts
	noModel.Model = ""
	res, err := EstimateArbitrary(NewArbitraryStream(s), noModel)
	if err != nil {
		t.Fatal(err)
	}
	if res != direct {
		t.Fatalf("defaulted model %+v != explicit %+v", res, direct)
	}
	// …but the adjacency-list model is rejected there.
	alModel := opts
	alModel.Model = ModelAdjacencyList
	if _, err := EstimateArbitrary(NewArbitraryStream(s), alModel); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("AL model on EstimateArbitrary: err = %v", err)
	}
}

func TestEstimateArbitraryBuriol(t *testing.T) {
	g := gen.Complete(10)
	s := SortedStream(g)
	res, err := Estimate(s, Options{
		Algorithm: AlgoArbBuriol, Model: ModelArbitrary,
		SampleSize: 400, Copies: 9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	if res.Estimate < truth/3 || res.Estimate > truth*3 {
		t.Fatalf("estimate %v far from %v", res.Estimate, truth)
	}
	if res.Passes != 1 {
		t.Fatalf("passes = %d", res.Passes)
	}
}

func TestEstimateArbitraryCancel(t *testing.T) {
	g := gen.Complete(40)
	s := SortedStream(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Algorithm: AlgoArbTwoPassWedge, Model: ModelArbitrary, SampleProb: 0.5, Seed: 1}
	if _, err := EstimateContext(ctx, s, opts); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	par := opts
	par.Copies, par.Parallel = 5, true
	if _, err := EstimateContext(ctx, s, par); !errors.Is(err, ErrCanceled) {
		t.Fatalf("parallel err = %v, want ErrCanceled", err)
	}
}

// Distinguish and LocalEstimate are adjacency-list facilities: an arbitrary
// Model smuggled through their Options must be rejected, not ignored.
func TestModelRejectedOutsideEstimate(t *testing.T) {
	g := gen.Complete(5)
	s := SortedStream(g)
	if _, _, err := DistinguishContext(context.Background(), s, 3, Options{Model: ModelArbitrary, Seed: 1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Distinguish: err = %v, want ErrInvalidOptions", err)
	}
	if _, _, err := LocalEstimateContext(context.Background(), s, 1, Options{Model: ModelArbitrary, Seed: 1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("LocalEstimate: err = %v, want ErrInvalidOptions", err)
	}
}

func TestReadArbitraryStreamFacade(t *testing.T) {
	s, err := ReadArbitraryStream(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateArbitrary(s, Options{Algorithm: AlgoArbTwoPassWedge, SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 1 {
		t.Fatalf("triangle estimate %v, want 1", res.Estimate)
	}
	if _, err := ReadArbitraryStream(strings.NewReader("0 1\n1 0\n")); err == nil {
		t.Fatal("duplicate edge should fail")
	}
	if _, err := ArbitraryStreamFromEdges([]Edge{{U: 1, V: 1}}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("self-loop: err = %v", err)
	}
}
