package adjstream

// Equality tests for telemetry: enabling the global registry (as -listen
// and -journal do) must not change a single reported number. Every
// estimator type runs with telemetry off and on, under both the sequential
// and broadcast drivers, and the results are compared bit-for-bit; where an
// estimator exports its space meter, the registry's high-water mark must
// equal the largest meter peak exactly.

import (
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
	"adjstream/internal/telemetry"
)

// spaceMetricKey maps roster entries to their registry high-water key;
// estimators without an entry export no space metric (and that staying
// true is fine — the estimate-equality half still covers them).
var spaceMetricKey = map[string]string{
	"core.TwoPassTriangle":      "core.twopass_triangle.space_words",
	"core.TwoPassFourCycle":     "core.twopass_fourcycle.space_words",
	"baseline.OnePassTriangle":  "baseline.onepass_triangle.space_words",
	"baseline.WedgeSampler":     "baseline.wedge_sampler.space_words",
	"baseline.OnePassFourCycle": "baseline.onepass_fourcycle.space_words",
	"baseline.ExactStream":      "baseline.exact_stream.space_words",
	"baseline.LocalTriangles":   "baseline.local_triangles.space_words",
}

// result is the observable output of one estimator copy.
type result struct {
	estimate float64
	space    int64
}

// runRoster constructs k copies with deterministic seeds and runs them
// under the sequential or broadcast driver, returning per-copy results.
func runRoster(t *testing.T, mk func(seed uint64) (stream.Estimator, error), s *stream.Stream, k int, broadcast bool) []result {
	t.Helper()
	ests := make([]stream.Estimator, k)
	for i := 0; i < k; i++ {
		e, err := mk(uint64(i)*0x9e37 + 101)
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = e
	}
	if broadcast {
		stream.RunBroadcastConfig(s, ests, stream.BroadcastConfig{BatchSize: 37})
	} else {
		for _, e := range ests {
			stream.Run(s, e)
		}
	}
	out := make([]result, k)
	for i, e := range ests {
		out[i] = result{estimate: e.Estimate(), space: e.SpaceWords()}
	}
	return out
}

func TestTelemetryDoesNotPerturbEstimates(t *testing.T) {
	// The registry is process-global; make the test own its state fully.
	telemetry.Disable()
	defer telemetry.Disable()
	g, err := gen.ErdosRenyi(120, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 5)
	const k = 4
	for _, tc := range estimatorRoster(s.M()) {
		t.Run(tc.name, func(t *testing.T) {
			telemetry.Disable()
			offSeq := runRoster(t, tc.mk, s, k, false)
			offBr := runRoster(t, tc.mk, s, k, true)

			reg := telemetry.Enable()
			reg.Reset()
			onSeq := runRoster(t, tc.mk, s, k, false)
			onBr := runRoster(t, tc.mk, s, k, true)
			snap := reg.Snapshot()
			telemetry.Disable()

			for i := 0; i < k; i++ {
				if onSeq[i] != offSeq[i] {
					t.Errorf("copy %d sequential: telemetry on %+v != off %+v", i, onSeq[i], offSeq[i])
				}
				if onBr[i] != offBr[i] {
					t.Errorf("copy %d broadcast: telemetry on %+v != off %+v", i, onBr[i], offBr[i])
				}
				if offBr[i] != offSeq[i] {
					t.Errorf("copy %d: broadcast %+v != sequential %+v", i, offBr[i], offSeq[i])
				}
			}

			key, ok := spaceMetricKey[tc.name]
			if !ok {
				return
			}
			got, ok := snap[key]
			if !ok {
				t.Fatalf("registry snapshot missing %q; have %v", key, telemetry.Global().Names())
			}
			var maxSpace int64
			for _, r := range append(onSeq, onBr...) {
				if r.space > maxSpace {
					maxSpace = r.space
				}
			}
			if int64(got) != maxSpace {
				t.Errorf("%s = %v, want max meter peak %d", key, got, maxSpace)
			}
		})
	}
}
