# Development targets. CI (.github/workflows/ci.yml) runs the same commands.

GO ?= go

.PHONY: build test race vet bench bench-smoke bench-json bench-baseline bench-gate journal-smoke serve-smoke cache-smoke merge-smoke cluster-smoke ingest-smoke model-smoke cover all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/stream/... ./internal/core/... ./internal/baseline/... ./internal/arbitrary/... ./internal/sampling/... ./internal/graph/... ./internal/telemetry/... ./internal/serve/... ./internal/cluster/... ./cmd/adjserved/... ./cmd/adjproxy/... ./cmd/adjmerge/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot without the wait.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Tiny end-to-end journal run: one experiment with -journal (telemetry on,
# no listener), then assert the JSONL validates and re-renders.
journal-smoke:
	@rm -f /tmp/journal-smoke.jsonl
	$(GO) run ./cmd/experiments -id F1 -seed 1 -journal /tmp/journal-smoke.jsonl >/dev/null
	$(GO) run ./cmd/runjournal -check /tmp/journal-smoke.jsonl
	$(GO) run ./cmd/runjournal -id F1 /tmp/journal-smoke.jsonl >/dev/null
	@rm -f /tmp/journal-smoke.jsonl

# End-to-end service smoke: boot adjserved on an ephemeral port with the
# demo catalog, hit every endpoint with curl-equivalent requests, and shut
# it down with SIGTERM — the same drain path a deployment exercises.
serve-smoke:
	$(GO) test -race -run 'TestServeEndToEnd' ./cmd/adjserved/
	$(GO) vet ./internal/serve/ ./cmd/adjserved/

# Result-cache smoke: boot adjserved -demo with telemetry, send the same
# request twice, and assert the repeat is a cache hit (X-Cache header plus
# the serve.cache.* counters on /debug/vars), then the root equivalence
# and stampede tests.
cache-smoke:
	$(GO) test -race -run 'TestCacheSmoke' ./cmd/adjserved/
	$(GO) test -race -run 'TestCachedResponseByteIdenticalEveryAlgorithmAndDriver|TestCacheStampedeSingleRun' .

# Full benchmark run archived as machine-readable JSON (see cmd/bench2json).
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem ./... \
		| $(GO) run ./cmd/bench2json -out BENCH_$$(date +%Y-%m-%d).json

# Refresh the committed benchmark baseline: full bench-json run, then stage
# the archive so the next commit carries it. bench-gate diffs against the
# newest committed BENCH_*.json, so rerun this after intentional perf
# changes (on a quiet machine — the baseline is only as good as the run).
bench-baseline: bench-json
	git add BENCH_*.json

# Key benchmarks that gate performance regressions. Sub-benchmarks of these
# are gated too; everything else is context-only in the benchdiff table.
BENCH_GATE_KEYS = BenchmarkBroadcastK32|BenchmarkBroadcastPushK32|BenchmarkExactKernels|BenchmarkEstimateColdVsCached|BenchmarkArbFourCycle
BENCH_GATE_PKGS = ./internal/stream/ ./internal/graph/ ./internal/serve/ ./internal/arbitrary/

# Perf regression gate: run only the key benchmarks briefly, convert to
# JSON, and diff against the newest committed BENCH_*.json baseline.
# Fails (exit 1) on a >15% ns/op regression. The benchtime is time-based,
# not -benchtime=Nx: a fixed iteration count is dominated by warmup on
# sub-100µs benchmarks and reads far slower than the 1s-benchtime
# baseline. CI runs the same pipeline with a looser threshold to absorb
# hosted-runner noise.
bench-gate:
	$(GO) test -run=NONE -bench='$(BENCH_GATE_KEYS)' -benchtime=0.3s $(BENCH_GATE_PKGS) \
		| $(GO) run ./cmd/bench2json -out /tmp/bench-gate.json
	$(GO) run ./cmd/benchdiff -new /tmp/bench-gate.json

# Cluster smoke: boot three in-process replicas plus the real adjproxy
# binary, assert proxied answers are byte-identical to a single node's
# (including under injected replica failure and total-outage fallback),
# and drain the proxy with SIGTERM — see OPERATIONS.md for the topology.
cluster-smoke:
	$(GO) test -race -run 'TestClusterSmoke|TestProxyBatch' ./cmd/adjproxy/
	$(GO) test -race -run 'TestCluster' .
	$(GO) vet ./internal/cluster/ ./cmd/adjproxy/

# Ingestion smoke: boot adjserved -demo with a small merge threshold,
# stream edge batches (staging, idempotent replay, threshold merge, flush
# merge), assert version-pinned estimates track each published version,
# then the root concurrent-ingest equivalence tests — estimates admitted
# during a batch flood must be byte-identical to cold-catalog runs of
# their pinned version, single-node and through a 3-replica fleet.
ingest-smoke:
	$(GO) test -race -run 'TestIngestSmoke' ./cmd/adjserved/
	$(GO) test -race -run 'TestIngestEquivalence' .
	$(GO) vet ./internal/serve/ ./internal/graph/

# Model-axis smoke: generate an arbitrary-order stream file, estimate over
# it from the CLI (the 3-pass 4-cycle estimator at p=1 is exact: 5 disjoint
# C4s), then the service half — an arbitrary-model POST /v1/estimate round
# trip with model echo and per-model cache isolation — plus the race-checked
# model tests at the facade and serve layers.
model-smoke:
	@rm -rf /tmp/model-smoke && mkdir -p /tmp/model-smoke
	$(GO) run ./cmd/genstream -kind disjoint-c4 -t 5 -seed 7 -format arbstream -out /tmp/model-smoke/g.arb
	$(GO) run ./cmd/cyclecount -model arbitrary -algo arb-threepass-fourcycle -prob 1 /tmp/model-smoke/g.arb \
		| tee /tmp/model-smoke/out.txt
	grep -q 'estimate:    5.00' /tmp/model-smoke/out.txt
	$(GO) test -race -run 'TestModelSmoke' ./cmd/adjserved/
	$(GO) test -race -run 'TestEstimateArbitrary|TestModel' . ./internal/serve/

# Split-run smoke: one 32-copy estimation split into four 8-copy shard
# processes, each writing a snapshot set, merged back with adjmerge and
# diffed against the unsplit parallel run. The six summary lines must match
# exactly — the split is invisible in the output.
merge-smoke:
	@rm -rf /tmp/merge-smoke && mkdir -p /tmp/merge-smoke
	$(GO) run ./cmd/genstream -kind er -n 300 -p 0.05 -seed 7 -out /tmp/merge-smoke/g.edges
	$(GO) run ./cmd/cyclecount -algo twopass-triangle -prob 0.2 -copies 32 -parallel -seed 5 \
		/tmp/merge-smoke/g.edges > /tmp/merge-smoke/single.txt
	for r in 0:8 8:16 16:24 24:32; do \
		$(GO) run ./cmd/cyclecount -algo twopass-triangle -prob 0.2 -copies 32 -parallel -seed 5 \
			-copy-range $$r -snapshot /tmp/merge-smoke/shard-$${r%:*}.snap /tmp/merge-smoke/g.edges || exit 1; \
	done
	$(GO) run ./cmd/adjmerge /tmp/merge-smoke/shard-*.snap > /tmp/merge-smoke/merged.txt
	head -6 /tmp/merge-smoke/single.txt | diff - /tmp/merge-smoke/merged.txt
	@echo "merge-smoke: split+merge output matches the single run"

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
