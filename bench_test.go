package adjstream

// Benchmarks regenerating the paper's evaluation, one per Table 1 row and
// Figure 1 panel plus the DESIGN.md ablations. Each benchmark drives the
// relevant algorithm or reduction on a representative workload and reports,
// beyond ns/op, the quantities the paper's claims are about:
//
//	relerr      — relative error of the estimate against ground truth
//	space-words — peak state in machine words
//	comm-words  — communication of the protocol simulation (lower bounds)
//
// The full parameter sweeps behind EXPERIMENTS.md live in cmd/experiments;
// these benchmarks pin one representative point per row so regressions in
// either accuracy or space are caught by `go test -bench=.`.

import (
	"math"
	"testing"

	"adjstream/internal/baseline"
	"adjstream/internal/comm"
	"adjstream/internal/core"
	"adjstream/internal/exp"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/lb"
	"adjstream/internal/stream"
)

// benchEstimator runs mk-built estimators over s for b.N iterations and
// reports mean relative error and space.
func benchEstimator(b *testing.B, s *stream.Stream, truth float64,
	mk func(seed uint64) (stream.Estimator, error)) {
	b.Helper()
	var errSum, spaceSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := mk(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, e)
		if truth > 0 {
			errSum += math.Abs(e.Estimate()-truth) / truth
		}
		spaceSum += float64(e.SpaceWords())
	}
	b.ReportMetric(errSum/float64(b.N), "relerr")
	b.ReportMetric(spaceSum/float64(b.N), "space-words")
}

func mustPlanted(b *testing.B, T int) (*graph.Graph, *stream.Stream) {
	b.Helper()
	g, err := gen.PlantedTriangles(T, 60, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g, stream.Random(g, 3)
}

// BenchmarkTable1Row01WedgeSampler: 1-pass wedge sampling, Õ(P2/T).
func BenchmarkTable1Row01WedgeSampler(b *testing.B) {
	g, s := mustPlanted(b, 400)
	benchEstimator(b, s, float64(g.Triangles()), func(seed uint64) (stream.Estimator, error) {
		return baseline.NewWedgeSampler(baseline.Config{SampleProb: 0.4, Seed: seed})
	})
}

// BenchmarkTable1Row02OnePass: 1-pass edge sampling, Õ(m/√T).
func BenchmarkTable1Row02OnePass(b *testing.B) {
	g, s := mustPlanted(b, 400)
	size := int(8 * float64(g.M()) / math.Sqrt(400))
	benchEstimator(b, s, float64(g.Triangles()), func(seed uint64) (stream.Estimator, error) {
		return baseline.NewOnePassTriangle(baseline.Config{SampleSize: size, Seed: seed})
	})
}

// BenchmarkTable1Row03EdgeSample: naive 2-pass estimator at Õ(m^{3/2}/T).
func BenchmarkTable1Row03EdgeSample(b *testing.B) {
	g, s := mustPlanted(b, 400)
	size := int(2 * math.Pow(float64(g.M()), 1.5) / 400)
	if int64(size) > g.M() {
		size = int(g.M())
	}
	benchEstimator(b, s, float64(g.Triangles()), func(seed uint64) (stream.Estimator, error) {
		return core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: size, Seed: seed})
	})
}

// BenchmarkTable1Row04ThreePass: 3-pass exact-load lightest edge.
func BenchmarkTable1Row04ThreePass(b *testing.B) {
	g, s := mustPlanted(b, 400)
	benchEstimator(b, s, float64(g.Triangles()), func(seed uint64) (stream.Estimator, error) {
		return core.NewThreePassTriangle(core.TriangleConfig{SampleSize: 1500, Seed: seed})
	})
}

// BenchmarkTable1Row05Distinguisher: 2-pass 0-vs-T at Õ(m/T^{2/3}).
func BenchmarkTable1Row05Distinguisher(b *testing.B) {
	g, s := mustPlanted(b, 400)
	size := int(4 * float64(g.M()) / math.Pow(400, 2.0/3.0))
	detects := 0
	var spaceSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: size, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, alg)
		if alg.Detected() {
			detects++
		}
		spaceSum += float64(alg.SpaceWords())
	}
	b.ReportMetric(float64(detects)/float64(b.N), "detect-rate")
	b.ReportMetric(spaceSum/float64(b.N), "space-words")
}

// BenchmarkTable1Row06TwoPassTriangle: the Theorem 3.7 algorithm at its
// Õ(m/T^{2/3}) budget.
func BenchmarkTable1Row06TwoPassTriangle(b *testing.B) {
	g, s := mustPlanted(b, 400)
	size := int(8 * float64(g.M()) / math.Pow(400, 2.0/3.0))
	benchEstimator(b, s, float64(g.Triangles()), func(seed uint64) (stream.Estimator, error) {
		return core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: size, PairCap: size, Seed: seed})
	})
}

// benchGadget builds yes/no gadgets each iteration, verifies the dichotomy,
// and reports the exact-protocol communication.
func benchGadget(b *testing.B, mk func(want bool, seed uint64) (*lb.Gadget, error)) {
	b.Helper()
	var commWords float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := mk(true, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		no, err := mk(false, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := yes.VerifyDichotomy(); err != nil {
			b.Fatal(err)
		}
		if err := no.VerifyDichotomy(); err != nil {
			b.Fatal(err)
		}
		alg, err := baseline.NewExactStream(yes.CycleLen)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := comm.RunProtocol(yes.Segments, alg)
		if err != nil {
			b.Fatal(err)
		}
		commWords += float64(tr.TotalWords)
	}
	b.ReportMetric(commWords/float64(b.N), "comm-words")
}

// BenchmarkTable1Row07LowerBoundPJ: Theorem 5.1 reduction (Figure 1a).
func BenchmarkTable1Row07LowerBoundPJ(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.TrianglePJGadget(comm.RandomPJ3(16, want, seed), 4)
	})
}

// BenchmarkTable1Row08LowerBound3Disj: Theorem 5.2 reduction (Figure 1b).
func BenchmarkTable1Row08LowerBound3Disj(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.TriangleDisj3Gadget(comm.RandomDisj3(12, want, seed), 3)
	})
}

// BenchmarkTable1Row09TwoPassFourCycle: the Theorem 4.6 algorithm at its
// Õ(m/T^{3/8}) budget.
func BenchmarkTable1Row09TwoPassFourCycle(b *testing.B) {
	g, err := gen.BipartiteButterflies(200, 60, 6, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := stream.Random(g, 2)
	truth := float64(g.FourCycles())
	size := int(10 * float64(g.M()) / math.Pow(truth, 3.0/8.0))
	if int64(size) > g.M() {
		size = int(g.M())
	}
	benchEstimator(b, s, truth, func(seed uint64) (stream.Estimator, error) {
		return core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: size, WedgeCap: 4 * size, Seed: seed})
	})
}

// BenchmarkTable1Row10LowerBoundIndex: Theorem 5.3 reduction (Figure 1c).
func BenchmarkTable1Row10LowerBoundIndex(b *testing.B) {
	strLen, err := lb.IndexGadgetStringLen(5)
	if err != nil {
		b.Fatal(err)
	}
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.FourCycleIndexGadget(comm.RandomIndex(strLen, want, seed), 5, 3)
	})
}

// BenchmarkTable1Row11LowerBoundDisj: Theorem 5.4 reduction (Figure 1d).
func BenchmarkTable1Row11LowerBoundDisj(b *testing.B) {
	strLen, err := lb.DisjGadgetStringLen(2)
	if err != nil {
		b.Fatal(err)
	}
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.FourCycleDisjGadget(comm.RandomDisj(strLen, want, seed), 2, 2)
	})
}

// BenchmarkTable1Row12LowerBoundLong: Theorem 5.5 reduction (Figure 1e).
func BenchmarkTable1Row12LowerBoundLong(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.LongCycleGadget(comm.RandomDisj(40, want, seed), 15, 5)
	})
}

// Figure 1 panels: gadget construction plus exact dichotomy verification.

func BenchmarkFigure1aGadget(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.TrianglePJGadget(comm.RandomPJ3(10, want, seed), 4)
	})
}

func BenchmarkFigure1bGadget(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.TriangleDisj3Gadget(comm.RandomDisj3(10, want, seed), 3)
	})
}

func BenchmarkFigure1cGadget(b *testing.B) {
	strLen, err := lb.IndexGadgetStringLen(3)
	if err != nil {
		b.Fatal(err)
	}
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.FourCycleIndexGadget(comm.RandomIndex(strLen, want, seed), 3, 4)
	})
}

func BenchmarkFigure1dGadget(b *testing.B) {
	strLen, err := lb.DisjGadgetStringLen(2)
	if err != nil {
		b.Fatal(err)
	}
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.FourCycleDisjGadget(comm.RandomDisj(strLen, want, seed), 2, 2)
	})
}

func BenchmarkFigure1eGadget(b *testing.B) {
	benchGadget(b, func(want bool, seed uint64) (*lb.Gadget, error) {
		return lb.LongCycleGadget(comm.RandomDisj(30, want, seed), 12, 6)
	})
}

// Ablations.

// BenchmarkAblationLightestEdge: naive vs ρ(τ) estimator variance on a
// heavy-edge book workload; reports the MSE ratio (naive/lightest).
func BenchmarkAblationLightestEdge(b *testing.B) {
	g, err := gen.PlantedBooks(3, 100, 30, 0.3, 5)
	if err != nil {
		b.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 4)
	var naiveSq, smartSq float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleProb: 0.15, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, n)
		dn := n.Estimate() - truth
		naiveSq += dn * dn
		l, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: 0.15, PairCap: 1 << 18, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, l)
		dl := l.Estimate() - truth
		smartSq += dl * dl
	}
	if smartSq > 0 {
		b.ReportMetric(naiveSq/smartSq, "mse-ratio")
	}
}

// BenchmarkAblationHvsExact: 2-pass H proxy vs 3-pass exact loads.
func BenchmarkAblationHvsExact(b *testing.B) {
	g, err := gen.PlantedBooks(4, 60, 25, 0.3, 6)
	if err != nil {
		b.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 4)
	var e2, e3 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		two, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: 0.25, PairCap: 1 << 18, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, two)
		e2 += math.Abs(two.Estimate()-truth) / truth
		three, err := core.NewThreePassTriangle(core.TriangleConfig{SampleProb: 0.25, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, three)
		e3 += math.Abs(three.Estimate()-truth) / truth
	}
	b.ReportMetric(e2/float64(b.N), "relerr-2pass")
	b.ReportMetric(e3/float64(b.N), "relerr-3pass")
}

// BenchmarkAblationGoodCycleFraction: Lemma 4.2 classification.
func BenchmarkAblationGoodCycleFraction(b *testing.B) {
	g, err := gen.BipartiteButterflies(100, 40, 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := core.ClassifyFourCycles(g, 40)
		frac = st.GoodFraction()
	}
	b.ReportMetric(frac, "good-fraction")
}

// BenchmarkAblationSamplerKind: bottom-k vs fixed-probability sampling.
func BenchmarkAblationSamplerKind(b *testing.B) {
	g, s := mustPlanted(b, 300)
	size := int(g.M() / 4)
	p := 0.25
	var ek, ep float64
	truth := float64(g.Triangles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: size, PairCap: size, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, bk)
		ek += math.Abs(bk.Estimate()-truth) / truth
		fp, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: p, PairCap: size, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, fp)
		ep += math.Abs(fp.Estimate()-truth) / truth
	}
	b.ReportMetric(ek/float64(b.N), "relerr-bottomk")
	b.ReportMetric(ep/float64(b.N), "relerr-fixedp")
}

// BenchmarkAblationPassCrossover: required-sample comparison point (one
// pass vs two passes on the fig-1a extremal family at T=1024).
func BenchmarkAblationPassCrossover(b *testing.B) {
	g, s := mustPlanted(b, 1024)
	truth := float64(g.Triangles())
	b1 := int(8 * float64(g.M()) / math.Sqrt(1024))
	b2 := int(8 * float64(g.M()) / math.Pow(1024, 2.0/3.0))
	var sp1, sp2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one, err := baseline.NewOnePassTriangle(baseline.Config{SampleSize: b1, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, one)
		sp1 += float64(one.SpaceWords())
		two, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b2, PairCap: b2, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, two)
		sp2 += float64(two.SpaceWords())
		_ = truth
	}
	b.ReportMetric(sp1/float64(b.N), "space-1pass")
	b.ReportMetric(sp2/float64(b.N), "space-2pass")
}

// BenchmarkExperimentFigure1 runs the full Figure 1 experiment table.
func BenchmarkExperimentFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure1Gadgets(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Throughput benchmarks: items/second for each estimator class on a common
// mid-size workload, complementing the per-row space/accuracy benches.

func benchThroughput(b *testing.B, mk func(seed uint64) (stream.Estimator, error)) {
	b.Helper()
	g, err := gen.ErdosRenyi(400, 0.05, 9)
	if err != nil {
		b.Fatal(err)
	}
	s := stream.Random(g, 3)
	b.ResetTimer()
	var items int64
	for i := 0; i < b.N; i++ {
		e, err := mk(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		stream.Run(s, e)
		items += int64(s.Len()) * int64(e.Passes())
	}
	b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/sec")
}

func BenchmarkThroughputTwoPassTriangle(b *testing.B) {
	benchThroughput(b, func(seed uint64) (stream.Estimator, error) {
		return core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: 0.25, PairCap: 4096, Seed: seed})
	})
}

func BenchmarkThroughputOnePassTriangle(b *testing.B) {
	benchThroughput(b, func(seed uint64) (stream.Estimator, error) {
		return baseline.NewOnePassTriangle(baseline.Config{SampleProb: 0.25, Seed: seed})
	})
}

func BenchmarkThroughputFourCycle(b *testing.B) {
	benchThroughput(b, func(seed uint64) (stream.Estimator, error) {
		return core.NewTwoPassFourCycle(core.FourCycleConfig{SampleProb: 0.25, WedgeCap: 4096, Seed: seed})
	})
}

func BenchmarkThroughputExact(b *testing.B) {
	benchThroughput(b, func(seed uint64) (stream.Estimator, error) {
		return baseline.NewExactStream(3)
	})
}

func BenchmarkThroughputAdaptive(b *testing.B) {
	benchThroughput(b, func(seed uint64) (stream.Estimator, error) {
		return core.NewAdaptiveTwoPassTriangle(core.AdaptiveConfig{InitialSample: 2048, Seed: seed})
	})
}

// BenchmarkGroundTruthCensus measures the full exact ground-truth battery
// the experiment harness pays per workload grid point: graph generation,
// CSR index build, and every memoized kernel cold (triangle and 4-cycle
// counts, edge loads, wedge count, degree moments, motif census). Each
// iteration builds a fresh graph so memoization never short-circuits.
func BenchmarkGroundTruthCensus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := gen.ErdosRenyi(600, 0.05, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		g.Triangles()
		g.FourCycles()
		g.WedgeCount()
		g.MaxTriangleLoad()
		g.DegreeMoments()
		if mc := g.Motifs(); mc.Cycle4 != g.FourCycles() {
			b.Fatal("census mismatch")
		}
	}
}
