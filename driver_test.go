package adjstream

// Equality tests for the broadcast driver: every estimator type in
// internal/core and internal/baseline, driven with fixed seeds, must
// produce estimates and space counts identical to sequential stream.Run.
// This is the contract that lets the exp harness and the public API switch
// drivers without perturbing a single reported number.

import (
	"testing"

	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

// estimatorRoster enumerates every Estimator constructor in internal/core
// and internal/baseline with a mid-size deterministic configuration.
func estimatorRoster(m int64) []struct {
	name string
	mk   func(seed uint64) (stream.Estimator, error)
} {
	size := int(m / 4)
	return []struct {
		name string
		mk   func(seed uint64) (stream.Estimator, error)
	}{
		{"core.TwoPassTriangle", func(seed uint64) (stream.Estimator, error) {
			return core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: size, PairCap: 4 * size, Seed: seed})
		}},
		{"core.ThreePassTriangle", func(seed uint64) (stream.Estimator, error) {
			return core.NewThreePassTriangle(core.TriangleConfig{SampleSize: size, Seed: seed})
		}},
		{"core.NaiveTwoPass", func(seed uint64) (stream.Estimator, error) {
			return core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: size, Seed: seed})
		}},
		{"core.TwoPassFourCycle", func(seed uint64) (stream.Estimator, error) {
			return core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: size, WedgeCap: 4 * size, Seed: seed})
		}},
		{"core.AdaptiveTwoPassTriangle", func(seed uint64) (stream.Estimator, error) {
			return core.NewAdaptiveTwoPassTriangle(core.AdaptiveConfig{InitialSample: size, Seed: seed})
		}},
		{"baseline.OnePassTriangle", func(seed uint64) (stream.Estimator, error) {
			return baseline.NewOnePassTriangle(baseline.Config{SampleSize: size, Seed: seed})
		}},
		{"baseline.WedgeSampler", func(seed uint64) (stream.Estimator, error) {
			return baseline.NewWedgeSampler(baseline.Config{SampleProb: 0.5, WedgeCap: 1 << 16, Seed: seed})
		}},
		{"baseline.OnePassFourCycle", func(seed uint64) (stream.Estimator, error) {
			return baseline.NewOnePassFourCycle(baseline.Config{SampleSize: size, Seed: seed})
		}},
		{"baseline.ExactStream", func(seed uint64) (stream.Estimator, error) {
			return baseline.NewExactStream(3)
		}},
		{"baseline.LocalTriangles", func(seed uint64) (stream.Estimator, error) {
			return baseline.NewLocalTriangles(0.5, seed)
		}},
	}
}

func TestBroadcastMatchesSequentialAllEstimators(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 5)
	const k = 8
	for _, tc := range estimatorRoster(s.M()) {
		t.Run(tc.name, func(t *testing.T) {
			seq := make([]stream.Estimator, k)
			par := make([]stream.Estimator, k)
			for i := 0; i < k; i++ {
				seed := uint64(i)*0x9e37 + 101
				a, err := tc.mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				b, err := tc.mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				stream.Run(s, a)
				seq[i], par[i] = a, b
			}
			st := stream.RunBroadcastConfig(s, par, stream.BroadcastConfig{BatchSize: 37})
			for i := 0; i < k; i++ {
				if got, want := par[i].Estimate(), seq[i].Estimate(); got != want {
					t.Errorf("copy %d: broadcast estimate %v != sequential %v", i, got, want)
				}
				if got, want := par[i].SpaceWords(), seq[i].SpaceWords(); got != want {
					t.Errorf("copy %d: broadcast space %d != sequential %d", i, got, want)
				}
			}
			if want := int64(st.Passes) * int64(s.Len()); st.StreamItemsRead != want {
				t.Errorf("StreamItemsRead = %d, want %d (one read per pass)", st.StreamItemsRead, want)
			}
		})
	}
}

// TestEstimateDriversAgree checks the public API: sequential, parallel
// broadcast, and parallel replay runs of the same Options produce identical
// results, and the broadcast result carries meaningful driver counters.
func TestEstimateDriversAgree(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 0.12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 9)
	base := Options{
		Algorithm:  AlgoTwoPassTriangle,
		SampleProb: 0.3,
		Copies:     9,
		Seed:       7,
	}
	sequential, err := Estimate(s, base)
	if err != nil {
		t.Fatal(err)
	}
	broadcast := base
	broadcast.Parallel = true
	resB, err := Estimate(s, broadcast)
	if err != nil {
		t.Fatal(err)
	}
	replay := base
	replay.Parallel = true
	replay.Driver = DriverReplay
	resR, err := Estimate(s, replay)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Estimate != sequential.Estimate || resR.Estimate != sequential.Estimate {
		t.Fatalf("estimates diverge: sequential %v, broadcast %v, replay %v",
			sequential.Estimate, resB.Estimate, resR.Estimate)
	}
	if resB.SpaceWords != sequential.SpaceWords || resR.SpaceWords != sequential.SpaceWords {
		t.Fatalf("space diverges: sequential %d, broadcast %d, replay %d",
			sequential.SpaceWords, resB.SpaceWords, resR.SpaceWords)
	}
	if resB.Driver != DriverBroadcast || resR.Driver != DriverReplay {
		t.Fatalf("drivers = %q, %q", resB.Driver, resR.Driver)
	}
	// 9 two-pass copies: broadcast reads 2·2m items, replay 9·2·2m.
	if resB.DriverStats.StreamItemsRead*2 > resR.DriverStats.StreamItemsRead {
		t.Fatalf("broadcast reads %d vs replay %d: want ≥ 2× fewer",
			resB.DriverStats.StreamItemsRead, resR.DriverStats.StreamItemsRead)
	}
}

func TestEstimateRejectsUnknownDriver(t *testing.T) {
	g, err := gen.ErdosRenyi(20, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Estimate(stream.Sorted(g), Options{
		Algorithm:  AlgoTwoPassTriangle,
		SampleProb: 0.5,
		Copies:     3,
		Parallel:   true,
		Driver:     "bogus",
	})
	if err == nil {
		t.Fatal("expected error for unknown driver")
	}
}
