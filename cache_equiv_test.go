// Cache equivalence tests for the serve-layer result cache. The contract:
// a cached response is byte-for-byte identical to the fresh response that
// populated it, for every algorithm under every driver shape (sequential,
// broadcast, replay) — the cache stores answers, it never re-derives them —
// and a stampede of identical concurrent requests performs exactly one
// underlying estimation run, with every duplicate coalesced onto it.
//
// The file lives in package adjstream_test (not adjstream) because it
// imports internal/serve, which itself imports the adjstream facade.
package adjstream_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adjstream"
	"adjstream/internal/gen"
	"adjstream/internal/serve"
	"adjstream/internal/telemetry"
)

// newCacheTestServer builds a server over one Erdős–Rényi graph with the
// given config and returns the httptest wrapper.
func newCacheTestServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	g, err := gen.ErdosRenyi(150, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	cat := serve.NewCatalog()
	if _, err := cat.Add("er150", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(cat, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postBody POSTs body and returns status, X-Cache header, and raw body.
func postBody(t *testing.T, ts *httptest.Server, path, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// wireRequest builds the JSON body for algo under the named driver shape,
// mirroring the option roster of context_equiv_test.go.
func wireRequest(algo adjstream.Algorithm, shape string) string {
	m := map[string]any{"graph": "er150", "algorithm": string(algo), "seed": 31}
	switch algo {
	case adjstream.AlgoWedgeSampler:
		m["sample_prob"] = 0.5
		m["pair_cap"] = 1 << 14
	case adjstream.AlgoExact:
		m["cycle_len"] = 3
	default:
		m["sample_size"] = 64
	}
	switch shape {
	case "broadcast", "replay":
		m["copies"] = 5
		m["parallel"] = true
		m["driver"] = shape
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestCachedResponseByteIdenticalEveryAlgorithmAndDriver repeats every
// algorithm × driver-shape request and requires the cached body to equal
// the fresh body byte for byte.
func TestCachedResponseByteIdenticalEveryAlgorithmAndDriver(t *testing.T) {
	ts := newCacheTestServer(t, serve.Config{})
	for _, algo := range adjstream.Algorithms() {
		for _, shape := range []string{"sequential", "broadcast", "replay"} {
			t.Run(string(algo)+"/"+shape, func(t *testing.T) {
				body := wireRequest(algo, shape)
				code, outcome, fresh := postBody(t, ts, "/v1/estimate", body)
				if code != http.StatusOK {
					t.Fatalf("fresh: status %d (%s)", code, fresh)
				}
				if outcome != "miss" {
					t.Fatalf("fresh: X-Cache = %q, want miss", outcome)
				}
				code, outcome, cached := postBody(t, ts, "/v1/estimate", body)
				if code != http.StatusOK {
					t.Fatalf("repeat: status %d", code)
				}
				if outcome != "hit" {
					t.Fatalf("repeat: X-Cache = %q, want hit", outcome)
				}
				if !bytes.Equal(fresh, cached) {
					t.Errorf("cached response differs from fresh:\nfresh  %s\ncached %s", fresh, cached)
				}
			})
		}
	}

	// The distinguish endpoint caches under its own kind.
	body := `{"graph":"er150","cycle_len":3,"sample_size":64,"seed":31}`
	if _, outcome, _ := postBody(t, ts, "/v1/distinguish", body); outcome != "miss" {
		t.Fatalf("distinguish fresh: X-Cache = %q, want miss", outcome)
	}
	code, outcome, cached := postBody(t, ts, "/v1/distinguish", body)
	if code != http.StatusOK || outcome != "hit" {
		t.Errorf("distinguish repeat: status %d X-Cache %q, want 200 hit", code, outcome)
	}
	var resp struct {
		Found *bool `json:"found"`
	}
	if err := json.Unmarshal(cached, &resp); err != nil || resp.Found == nil {
		t.Errorf("cached distinguish lost its found field: %s (err %v)", cached, err)
	}
}

// TestCacheStampedeSingleRun fires 32 concurrent identical requests at a
// cold cache and asserts — via the serve.cache.* telemetry counters —
// that exactly one underlying estimation ran: one miss (the leader), and
// every other request either coalesced onto the in-flight run or hit the
// entry it stored. Runs under -race in CI.
func TestCacheStampedeSingleRun(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	reg.Reset()

	ts := newCacheTestServer(t, serve.Config{Workers: 4})
	const stampede = 32
	// A run heavy enough (median-of-5 over broadcast) that the duplicates
	// arrive while the leader is still streaming.
	body := `{"graph":"er150","algorithm":"twopass-triangle","sample_size":256,"copies":5,"parallel":true,"seed":9}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, stampede)
	errs := make([]error, stampede)
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	snap := reg.Snapshot()
	misses := snap["serve.cache.misses"]
	hits := snap["serve.cache.hits"]
	coalesced := snap["serve.cache.coalesced"]
	if misses != 1 {
		t.Errorf("serve.cache.misses = %v, want exactly 1 (one underlying run)", misses)
	}
	if hits+coalesced != stampede-1 {
		t.Errorf("hits (%v) + coalesced (%v) = %v, want %d", hits, coalesced, hits+coalesced, stampede-1)
	}
}
