package adjstream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"adjstream/internal/gen"
)

func TestEstimateExactAlgorithms(t *testing.T) {
	g := gen.Complete(8) // T = 56, C4 = 105
	s := SortedStream(g)
	cases := []struct {
		opts Options
		want float64
	}{
		{Options{Algorithm: AlgoExact}, float64(g.Triangles())},
		{Options{Algorithm: AlgoExact, CycleLen: 4}, float64(g.FourCycles())},
		{Options{Algorithm: AlgoTwoPassTriangle, SampleProb: 1, PairCap: 1000, Seed: 1}, float64(g.Triangles())},
		{Options{Algorithm: AlgoThreePassTriangle, SampleProb: 1, Seed: 1}, float64(g.Triangles())},
		{Options{Algorithm: AlgoNaiveTwoPass, SampleProb: 1, Seed: 1}, float64(g.Triangles())},
		{Options{Algorithm: AlgoOnePassTriangle, SampleProb: 1, Seed: 1}, float64(g.Triangles())},
		{Options{Algorithm: AlgoTwoPassFourCycle, SampleProb: 1, Seed: 1}, float64(g.FourCycles())},
	}
	for _, c := range cases {
		res, err := Estimate(s, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.opts.Algorithm, err)
		}
		if res.Estimate != c.want {
			t.Errorf("%s: estimate = %v, want %v", c.opts.Algorithm, res.Estimate, c.want)
		}
		if res.M != g.M() {
			t.Errorf("%s: M = %d, want %d", c.opts.Algorithm, res.M, g.M())
		}
		if res.SpaceWords <= 0 {
			t.Errorf("%s: space = %d", c.opts.Algorithm, res.SpaceWords)
		}
	}
}

func TestEstimatePassCounts(t *testing.T) {
	g := gen.Complete(5)
	s := SortedStream(g)
	wants := map[Algorithm]int{
		AlgoTwoPassTriangle:   2,
		AlgoThreePassTriangle: 3,
		AlgoNaiveTwoPass:      2,
		AlgoOnePassTriangle:   1,
		AlgoWedgeSampler:      1,
		AlgoTwoPassFourCycle:  2,
		AlgoExact:             1,
	}
	for algo, want := range wants {
		res, err := Estimate(s, Options{Algorithm: algo, SampleProb: 1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Passes != want {
			t.Errorf("%s: passes = %d, want %d", algo, res.Passes, want)
		}
	}
}

func TestEstimateMedianCopies(t *testing.T) {
	g, err := gen.PlantedTriangles(40, 15, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomStream(g, 1)
	res, err := Estimate(s, Options{Algorithm: AlgoTwoPassTriangle, SampleProb: 0.5, PairCap: 10000, Copies: 7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 7 {
		t.Fatalf("copies = %d", res.Copies)
	}
	truth := float64(g.Triangles())
	if math.Abs(res.Estimate-truth)/truth > 0.5 {
		t.Fatalf("median estimate %v far from %v", res.Estimate, truth)
	}
}

func TestEstimateParallelMatchesSequential(t *testing.T) {
	g, err := gen.PlantedTriangles(40, 15, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomStream(g, 1)
	opts := Options{Algorithm: AlgoTwoPassTriangle, SampleProb: 0.5, PairCap: 10000, Copies: 7, Seed: 5}
	seq, err := Estimate(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	par, err := Estimate(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Estimate != par.Estimate || seq.SpaceWords != par.SpaceWords {
		t.Fatalf("parallel (%v, %d) differs from sequential (%v, %d)",
			par.Estimate, par.SpaceWords, seq.Estimate, seq.SpaceWords)
	}
}

func TestEstimateConfidenceDerivesCopies(t *testing.T) {
	g := gen.Complete(5)
	res, err := Estimate(SortedStream(g), Options{Algorithm: AlgoExact, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies < 3 || res.Copies%2 == 0 {
		t.Fatalf("copies = %d, want odd > 1", res.Copies)
	}
}

func TestEstimateOptionErrors(t *testing.T) {
	g := gen.Complete(4)
	s := SortedStream(g)
	bad := []Options{
		{},                                  // no algorithm
		{Algorithm: "bogus", SampleProb: 1}, // unknown algorithm
		{Algorithm: AlgoTwoPassTriangle},    // no sampling parameter
		{Algorithm: AlgoTwoPassTriangle, SampleProb: 1, Copies: 3, Confidence: 0.9},
		{Algorithm: AlgoTwoPassTriangle, SampleProb: 1, Copies: -1},
		{Algorithm: AlgoTwoPassTriangle, SampleProb: 1, Confidence: 1.5},
	}
	for i, o := range bad {
		if _, err := Estimate(s, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStreamIOHelpers(t *testing.T) {
	g := gen.Complete(5)
	var buf bytes.Buffer
	if err := WriteStream(&buf, SortedStream(g)); err != nil {
		t.Fatal(err)
	}
	s, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != g.M() {
		t.Fatalf("M = %d", s.M())
	}
	buf.Reset()
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("edge list M = %d", g2.M())
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	g := gen.Complete(6)
	edgePath := filepath.Join(dir, "g.edges")
	f, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := ReadEdgeListFile(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Triangles() != g.Triangles() {
		t.Fatal("edge list file round trip failed")
	}

	streamPath := filepath.Join(dir, "g.stream")
	f, err = os.Create(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(f, SortedStream(g)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := ReadStreamFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != g.M() {
		t.Fatal("stream file round trip failed")
	}

	if _, err := ReadEdgeListFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := ReadStreamFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestBuilderReexport(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if g.M() != 1 {
		t.Fatal("builder re-export broken")
	}
	g2, err := FromEdges([]Edge{{U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 2 {
		t.Fatal("FromEdges re-export broken")
	}
}

func TestAlgorithmsListBuildable(t *testing.T) {
	g := gen.Complete(5)
	s := SortedStream(g)
	for _, a := range Algorithms() {
		opts := Options{Algorithm: a, SampleProb: 1, Seed: 1}
		if a == AlgoAdaptiveTriangle {
			// The adaptive estimator budgets by sample size, not rate.
			opts = Options{Algorithm: a, SampleSize: 100, Seed: 1}
		}
		res, err := Estimate(s, opts)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Passes < 1 {
			t.Fatalf("%s: passes = %d", a, res.Passes)
		}
	}
}

func TestDistinguish(t *testing.T) {
	free := gen.CompleteBipartite(8, 8) // triangle-free, C4-rich
	tri := gen.DisjointTriangles(40)
	c5, err := FromEdges([]Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Triangles: full budget must separate the instances.
	found, res, err := Distinguish(SortedStream(tri), 3, int(tri.M()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found || res.Passes != 2 {
		t.Fatalf("found=%v passes=%d", found, res.Passes)
	}
	found, _, err = Distinguish(SortedStream(free), 3, int(free.M()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("false positive on triangle-free graph")
	}

	// 4-cycles.
	found, _, err = Distinguish(SortedStream(free), 4, int(free.M()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("missed 4-cycles in K88")
	}

	// ℓ = 5: exact path, O(m) space.
	found, res, err = Distinguish(SortedStream(c5), 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found || res.SpaceWords != 2*c5.M() {
		t.Fatalf("found=%v space=%d", found, res.SpaceWords)
	}

	if _, _, err := Distinguish(SortedStream(free), 2, 0, 1); err == nil {
		t.Fatal("expected error for cycleLen < 3")
	}
}

func TestAdaptiveViaFacade(t *testing.T) {
	g := gen.Complete(8)
	res, err := Estimate(SortedStream(g), Options{Algorithm: AlgoAdaptiveTriangle, SampleSize: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != float64(g.Triangles()) {
		t.Fatalf("estimate = %v, want %d (full coverage)", res.Estimate, g.Triangles())
	}
}

func TestLocalEstimateFacade(t *testing.T) {
	g := gen.Friendship(6)
	counts, res, err := LocalEstimate(SortedStream(g), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(counts[0]-6) > 1e-9 {
		t.Fatalf("hub local count = %v, want 6", counts[0])
	}
	if math.Abs(res.Estimate-6) > 1e-9 {
		t.Fatalf("global = %v", res.Estimate)
	}
	if _, _, err := LocalEstimate(SortedStream(g), 0, 1); err == nil {
		t.Fatal("expected error for p=0")
	}
}
