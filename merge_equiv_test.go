package adjstream

// Split-run equivalence: for every algorithm, partitioning a 9-copy run
// into three shards — each executed with a different driver — writing the
// shards to snapshot files, reading them back out of order, and merging
// must reproduce the single-process parallel Result bit for bit.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

func TestShardedMergeMatchesSingleRun(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 0.12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 9)
	const k = 9
	shards := []struct {
		lo, hi int
		driver Driver
	}{
		{0, 3, DriverBroadcast},
		{3, 7, DriverPushBroadcast},
		{7, 9, DriverReplay},
	}
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			opts := Options{
				Algorithm:  algo,
				SampleSize: 64,
				PairCap:    512,
				Copies:     k,
				Parallel:   true,
				Seed:       21,
			}
			want, err := Estimate(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			files := make([]string, len(shards))
			for i, sh := range shards {
				so := opts
				so.Driver = sh.driver
				snaps, err := EstimateShardContext(context.Background(), s, so, sh.lo, sh.hi)
				if err != nil {
					t.Fatalf("shard [%d,%d): %v", sh.lo, sh.hi, err)
				}
				if len(snaps) != sh.hi-sh.lo {
					t.Fatalf("shard [%d,%d): %d snapshots", sh.lo, sh.hi, len(snaps))
				}
				files[i] = filepath.Join(dir, fmt.Sprintf("shard%d.snap", i))
				if err := WriteSnapshotFile(files[i], sh.lo, snaps); err != nil {
					t.Fatal(err)
				}
			}
			// Reassemble reading the files in reverse order: the merge must
			// not care which shard ran where.
			all := make([]CopySnapshot, k)
			for i := len(files) - 1; i >= 0; i-- {
				idxs, snaps, err := ReadSnapshotFile(files[i])
				if err != nil {
					t.Fatal(err)
				}
				for j, idx := range idxs {
					if idx < 0 || idx >= k || all[idx] != nil {
						t.Fatalf("file %d: bad or duplicate copy index %d", i, idx)
					}
					all[idx] = snaps[j]
				}
			}
			gotAlgo, err := SnapshotAlgorithm(all[0])
			if err != nil {
				t.Fatal(err)
			}
			if gotAlgo != algo {
				t.Errorf("SnapshotAlgorithm = %q, want %q", gotAlgo, algo)
			}
			got, err := MergeSnapshots(all)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want.Estimate || got.SpaceWords != want.SpaceWords ||
				got.Passes != want.Passes || got.M != want.M || got.Copies != want.Copies {
				t.Errorf("merged (est %v, space %d, passes %d, m %d, copies %d) != single-run (%v, %d, %d, %d, %d)",
					got.Estimate, got.SpaceWords, got.Passes, got.M, got.Copies,
					want.Estimate, want.SpaceWords, want.Passes, want.M, want.Copies)
			}
		})
	}
}

func TestEstimateShardContextValidatesRange(t *testing.T) {
	g, err := gen.ErdosRenyi(20, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Sorted(g)
	opts := Options{Algorithm: AlgoTwoPassTriangle, SampleProb: 0.5, Copies: 4, Seed: 1}
	for _, r := range [][2]int{{-1, 2}, {2, 2}, {3, 1}, {0, 5}} {
		if _, err := EstimateShardContext(context.Background(), s, opts, r[0], r[1]); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("range [%d,%d): err = %v, want ErrInvalidOptions", r[0], r[1], err)
		}
	}
	// A single-copy "shard" of a single-copy run degenerates to Estimate.
	single := Options{Algorithm: AlgoTwoPassTriangle, SampleProb: 0.5, Seed: 1}
	snaps, err := EstimateShardContext(context.Background(), s, single, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Estimate(s, single)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != want.Estimate || got.SpaceWords != want.SpaceWords {
		t.Errorf("single-copy shard merge (%v, %d) != Estimate (%v, %d)",
			got.Estimate, got.SpaceWords, want.Estimate, want.SpaceWords)
	}
}
