package adjstream

// Public-API driver equivalence: for every algorithm, the pull broadcast
// executor (the default), the legacy push fan-out, and the replay driver
// must reproduce the sequential median run bit for bit — estimate, space,
// passes and m. This is the whole-roster version of TestEstimateDriversAgree.

import (
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

func TestAllDriversBitIdentical(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 0.12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 9)
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			base := Options{
				Algorithm:  algo,
				SampleSize: 64,
				PairCap:    512,
				Copies:     9,
				Seed:       7,
			}
			want, err := Estimate(s, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range []Driver{DriverBroadcast, DriverPushBroadcast, DriverReplay} {
				o := base
				o.Parallel = true
				o.Driver = d
				got, err := Estimate(s, o)
				if err != nil {
					t.Fatalf("%s: %v", d, err)
				}
				if got.Estimate != want.Estimate || got.SpaceWords != want.SpaceWords ||
					got.Passes != want.Passes || got.M != want.M {
					t.Errorf("%s: (est %v, space %d, passes %d, m %d) != sequential (%v, %d, %d, %d)",
						d, got.Estimate, got.SpaceWords, got.Passes, got.M,
						want.Estimate, want.SpaceWords, want.Passes, want.M)
				}
				if got.Driver != d {
					t.Errorf("result driver = %q, want %q", got.Driver, d)
				}
			}
		})
	}
}
